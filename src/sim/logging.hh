/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for status messages that do not stop the run.
 */

#ifndef UMANY_SIM_LOGGING_HH
#define UMANY_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace umany
{

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/**
 * Report an internal simulator bug and abort.
 *
 * Use for conditions that should never happen regardless of user
 * input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace umany

#endif // UMANY_SIM_LOGGING_HH
