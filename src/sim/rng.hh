/**
 * @file
 * Deterministic random number generation and the service-time /
 * arrival distributions used throughout the evaluation.
 *
 * The generator is xoshiro256++ seeded via splitmix64, so every
 * experiment is reproducible from a single 64-bit seed.
 */

#ifndef UMANY_SIM_RNG_HH
#define UMANY_SIM_RNG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace umany
{

/**
 * Derive an independent stream seed from a base seed and a component
 * salt. Components that draw random numbers (load generator arrivals,
 * endpoint picks, service-time behaviors, network routing, ...) seed
 * their generators via distinct salts so that adding or removing
 * draws in one subsystem never perturbs another subsystem's sequence
 * (which would invalidate golden regression outputs).
 */
std::uint64_t streamSeed(std::uint64_t base, std::uint64_t salt);

/** Well-known component salts for streamSeed(). */
namespace rngstream
{
constexpr std::uint64_t arrival = 0x41525249u;    //!< "ARRI"
constexpr std::uint64_t endpoint = 0x454e4450u;   //!< "ENDP"
constexpr std::uint64_t burst = 0x42525354u;      //!< "BRST"
constexpr std::uint64_t behavior = 0x42454856u;   //!< "BEHV"
constexpr std::uint64_t placement = 0x504c4143u;  //!< "PLAC"
constexpr std::uint64_t server = 0x53525652u;     //!< "SRVR" (+id)
constexpr std::uint64_t network = 0x4e4f4332u;    //!< "NOC2"
constexpr std::uint64_t swqueue = 0x53575130u;    //!< "SWQ0"
constexpr std::uint64_t rnic = 0x524e4943u;       //!< "RNIC"
constexpr std::uint64_t coherence = 0x44495254u;  //!< "DIRT"
constexpr std::uint64_t fault = 0x464c5430u;      //!< "FLT0"
constexpr std::uint64_t lane = 0x4c414e45u;       //!< "LANE" (+idx)
constexpr std::uint64_t dispatch = 0x44535043u;   //!< "DSPC"
constexpr std::uint64_t package = 0x504b4730u;    //!< "PKG0" (+id)
constexpr std::uint64_t replica = 0x5245504cu;    //!< "REPL"
} // namespace rngstream

/** xoshiro256++ PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /** Exponential variate with the given mean. */
    double expMean(double mean);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Normal variate with mean/stddev. */
    double gaussian(double mean, double sigma);

    /** Lognormal variate parameterized by underlying mu/sigma. */
    double lognormal(double mu, double sigma);

    /**
     * Split off an independent stream (seeded from this stream).
     * Used to give each component its own generator.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Base class for service-time distributions (Fig 20's exponential,
 * lognormal, and bimodal cases, plus general use).
 */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample (never negative). */
    virtual double sample(Rng &rng) const = 0;

    /** Analytic or configured mean of the distribution. */
    virtual double mean() const = 0;
};

/** Fixed-value distribution. */
class FixedDist : public Distribution
{
  public:
    explicit FixedDist(double value) : value_(value) {}
    double sample(Rng &) const override { return value_; }
    double mean() const override { return value_; }

  private:
    double value_;
};

/** Exponential distribution with the given mean. */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }

  private:
    double mean_;
};

/**
 * Lognormal distribution specified by its actual mean and the sigma
 * of the underlying normal (heavier tail for larger sigma).
 */
class LognormalDist : public Distribution
{
  public:
    LognormalDist(double mean, double sigma);
    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }

  private:
    double mean_;
    double mu_;
    double sigma_;
};

/**
 * Bimodal distribution: value a with probability p, else value b.
 * Matches the synthetic workloads of Shinjuku-style evaluations.
 */
class BimodalDist : public Distribution
{
  public:
    BimodalDist(double a, double b, double p_a);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double a_;
    double b_;
    double pA_;
};

/**
 * Markov-Modulated Poisson Process used to generate bursty request
 * arrivals (Section 3.2's characterization): the process moves among
 * a small number of states, each with its own Poisson rate.
 */
class Mmpp
{
  public:
    struct State
    {
        double rate;      //!< Arrivals per second in this state.
        double meanStay;  //!< Mean sojourn time in seconds.
    };

    Mmpp(std::vector<State> states, std::uint64_t seed);

    /** Time (seconds) until the next arrival. */
    double nextInterarrival();

    /** Rate of the current state (arrivals/sec). */
    double currentRate() const { return states_[state_].rate; }

    /** Long-run average rate (stay-time-weighted). */
    double averageRate() const;

  private:
    std::vector<State> states_;
    Rng rng_;
    std::size_t state_ = 0;
    double stateTimeLeft_ = 0.0;

    void enterRandomState();
};

} // namespace umany

#endif // UMANY_SIM_RNG_HH
