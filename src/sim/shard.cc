#include "sim/shard.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace umany
{

namespace
{

/** The lane a worker thread is currently executing, if any. */
thread_local EventQueue *tlsLaneQueue = nullptr;
thread_local std::uint32_t tlsLaneIdx = ShardRuntime::laneNone;

} // namespace

ShardRuntime::ShardRuntime(EventQueue &eq, const Params &p)
    : eq_(eq), window_(std::max<Tick>(p.window, 1))
{
    const std::uint32_t lanes = std::max(p.clusters, 1u) + 1;
    shards_ = std::max(std::min(p.shards, lanes), 1u);
    lanes_.reserve(lanes);
    for (std::uint32_t l = 0; l < lanes; ++l) {
        lanes_.push_back(std::make_unique<Lane>());
        lanes_.back()->outbox.resize(lanes);
    }
}

ShardRuntime::~ShardRuntime()
{
    if (attached_)
        detach();
}

std::uint32_t
ShardRuntime::currentLane()
{
    return tlsLaneIdx;
}

void
ShardRuntime::setLaneProfiler(std::uint32_t lane, SimProfiler *prof)
{
    lanes_.at(lane)->q.setProfiler(prof);
}

std::uint64_t
ShardRuntime::crossLaneEvents() const
{
    std::uint64_t n = 0;
    for (const auto &lane : lanes_)
        n += lane->crossLane;
    return n;
}

void
ShardRuntime::attach()
{
    if (attached_)
        panic("ShardRuntime: already attached");
    // Move the queue's pending events into the lanes in (tick, seq)
    // order so FIFO ties among pre-attach events survive the split.
    while (!eq_.heap_.empty()) {
        const EventQueue::Node top = eq_.popTop();
        EventQueue::Callback cb = std::move(eq_.slab_[top.slot]);
        eq_.free_.push_back(top.slot);
        lanes_[laneOf(top.part)]->q.schedule(
            top.when, EvTag{top.src, top.part}, std::move(cb));
    }
    coordNow_ = eq_._now;
    eq_.runtime_ = this;
    attached_ = true;
    stop_.store(false, std::memory_order_relaxed);
    for (std::uint32_t s = 1; s < shards_; ++s)
        workers_.emplace_back([this, s]() { workerLoop(s); });
}

void
ShardRuntime::detach()
{
    if (!attached_)
        return;
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
    eq_.runtime_ = nullptr;
    attached_ = false;
    // Fold simulated time and dispatch counts back, then return any
    // still-pending events (drain-limit / budget stops) so the
    // serial queue again owns the complete simulation state.
    Tick now = coordNow_;
    for (const auto &lane : lanes_) {
        now = std::max(now, lane->q.now());
        eq_.dispatched_ += lane->q.dispatched();
    }
    eq_._now = std::max(eq_._now, now);
    for (const auto &lane : lanes_) {
        EventQueue &q = lane->q;
        while (!q.heap_.empty()) {
            const EventQueue::Node top = q.popTop();
            EventQueue::Callback cb = std::move(q.slab_[top.slot]);
            q.free_.push_back(top.slot);
            eq_.schedule(top.when, EvTag{top.src, top.part},
                         std::move(cb));
        }
    }
}

void
ShardRuntime::routeSchedule(Tick when, EvTag tag,
                            EventQueue::Callback cb)
{
    const std::uint32_t dst = laneOf(tag.part);
    Lane &target = *lanes_[dst];
    if (tlsLaneQueue == nullptr) {
        // Coordinator context (attach-time or between windows): the
        // lanes are quiescent, insert directly.
        target.q.schedule(when, tag, std::move(cb));
        return;
    }
    Lane &cur = *lanes_[tlsLaneIdx];
    if (&target == &cur) {
        cur.q.schedule(when, tag, std::move(cb));
        return;
    }
    cur.outbox[dst].push_back(Pending{when, tag, std::move(cb)});
    ++cur.crossLane;
}

Tick
ShardRuntime::currentNow() const
{
    return tlsLaneQueue != nullptr ? tlsLaneQueue->now() : coordNow_;
}

SimProfiler *
ShardRuntime::currentProfiler() const
{
    return tlsLaneQueue != nullptr ? tlsLaneQueue->profiler()
                                   : eq_.prof_;
}

std::size_t
ShardRuntime::pendingEvents() const
{
    std::size_t n = 0;
    for (const auto &lane : lanes_) {
        n += lane->q.size();
        for (const auto &box : lane->outbox)
            n += box.size();
    }
    return n;
}

std::uint64_t
ShardRuntime::laneDispatched() const
{
    std::uint64_t n = 0;
    for (const auto &lane : lanes_)
        n += lane->q.dispatched();
    return n;
}

bool
ShardRuntime::earliestPending(Tick &out) const
{
    bool any = false;
    Tick t = std::numeric_limits<Tick>::max();
    for (const auto &lane : lanes_) {
        if (!lane->q.heap_.empty()) {
            t = std::min(t, lane->q.heap_.front().when);
            any = true;
        }
    }
    out = t;
    return any;
}

void
ShardRuntime::runOwnedLanes(std::uint32_t shard)
{
    const auto lanes = static_cast<std::uint32_t>(lanes_.size());
    const Tick horizon = horizon_;
    for (std::uint32_t l = shard; l < lanes; l += shards_) {
        tlsLaneQueue = &lanes_[l]->q;
        tlsLaneIdx = l;
        // Run strictly below the horizon: an event at exactly H is
        // next window's work (the torn-window boundary).
        lanes_[l]->q.runUntil(horizon - 1);
        tlsLaneQueue = nullptr;
        tlsLaneIdx = laneNone;
    }
}

void
ShardRuntime::workerLoop(std::uint32_t shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        epoch_.wait(seen, std::memory_order_acquire);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        runOwnedLanes(shard);
        arrived_.fetch_add(1, std::memory_order_release);
        arrived_.notify_one();
    }
}

void
ShardRuntime::runWindow()
{
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    runOwnedLanes(0);
    const std::uint32_t want = shards_ - 1;
    std::uint32_t a = arrived_.load(std::memory_order_acquire);
    while (a != want) {
        arrived_.wait(a, std::memory_order_acquire);
        a = arrived_.load(std::memory_order_acquire);
    }
}

void
ShardRuntime::drainMailboxes()
{
    // Fixed order — destination lane, then source lane, then FIFO —
    // and single-threaded: the insertion sequence into each lane is
    // independent of the shard count.
    const auto lanes = static_cast<std::uint32_t>(lanes_.size());
    for (std::uint32_t dst = 0; dst < lanes; ++dst) {
        EventQueue &q = lanes_[dst]->q;
        for (std::uint32_t src = 0; src < lanes; ++src) {
            auto &box = lanes_[src]->outbox[dst];
            for (Pending &p : box) {
                Tick at = p.when;
                if (at < horizon_) {
                    // A cross-lane effect inside the window lands at
                    // its horizon instead: the conservative bound
                    // that keeps lanes causally independent.
                    ++clamped_;
                    maxClamp_ = std::max(maxClamp_, horizon_ - at);
                    at = horizon_;
                }
                q.schedule(at, p.tag, std::move(p.cb));
            }
            box.clear();
        }
    }
}

EventQueue::RunResult
ShardRuntime::runWindowed(Tick limit, std::uint64_t max_events)
{
    constexpr auto unlimited =
        std::numeric_limits<std::uint64_t>::max();
    for (;;) {
        Tick t = 0;
        if (!earliestPending(t)) {
            return EventQueue::RunResult::Drained;
        }
        if (t > limit) {
            coordNow_ = limit;
            return EventQueue::RunResult::Limited;
        }
        if (max_events == 0)
            return EventQueue::RunResult::Budget;
        // H = min(T + W, limit + 1): events at exactly `limit` must
        // still run (runUntil contract), and the horizon itself is
        // exclusive. Guard the tick-type overflow on open-ended
        // run() limits.
        Tick h = t + window_;
        if (h < t || (limit - t) < window_)
            h = limit == std::numeric_limits<Tick>::max()
                    ? limit
                    : limit + 1;
        horizon_ = h;
        const std::uint64_t before = laneDispatched();
        runWindow();
        drainMailboxes();
        coordNow_ = std::min(h - 1, limit);
        ++windows_;
        if (max_events != unlimited) {
            const std::uint64_t ran = laneDispatched() - before;
            max_events = ran >= max_events ? 0 : max_events - ran;
        }
    }
}

bool
ShardRuntime::runUntil(Tick limit)
{
    return runWindowed(limit,
                       std::numeric_limits<std::uint64_t>::max()) ==
           EventQueue::RunResult::Drained;
}

EventQueue::RunResult
ShardRuntime::runUntil(Tick limit, std::uint64_t max_events)
{
    return runWindowed(limit, max_events);
}

} // namespace umany
