/**
 * @file
 * Conservative time-windowed parallel DES: shard one simulation
 * across worker threads by ICN cluster partition.
 *
 * A ShardRuntime attaches to the simulation's EventQueue and splits
 * its pending events into per-partition lanes: one lane per ICN
 * cluster plus one shared lane for everything with no cluster
 * affinity (external fabric, load generation, driver control). The
 * lanes are distributed round-robin over a pool of worker threads
 * and executed in lockstep windows:
 *
 *   1. The coordinator finds T, the earliest pending tick across all
 *      lanes, and publishes a horizon H = T + W (W = the sync window,
 *      by default the minimum cross-cluster ICN latency that the
 *      SimProfiler's partitionability analyzer measures).
 *   2. Every worker runs its lanes up to but excluding H. An event
 *      scheduled into the executing lane stays local; an event for
 *      another lane is pushed into a single-producer mailbox.
 *   3. At the window barrier the coordinator drains all mailboxes in
 *      a fixed order (destination lane, then source lane, then FIFO)
 *      into the destination lanes, clamping any tick below H up to H.
 *
 * Because every lane only executes events below H and every
 * cross-lane effect lands at or after H, no lane can observe another
 * lane mid-window: the schedule is conservative and the simulated
 * results are identical for any shard count N — lanes are derived
 * from the model (cluster ids), not from the thread count, and the
 * drain order is fixed. Results are *not* tick-for-tick identical to
 * the serial kernel: cross-lane events that would have landed inside
 * the current window are deferred to its horizon (bounded lateness
 * <= W per lane transition, counted in clampedEvents()).
 *
 * The serial kernel is untouched: with no runtime attached the
 * EventQueue pays one null-check per operation and `--shards=1`
 * stays byte-identical to the sequential simulator.
 */

#ifndef UMANY_SIM_SHARD_HH
#define UMANY_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace umany
{

class SimProfiler;

class ShardRuntime
{
  public:
    struct Params
    {
        /** ICN clusters; lanes 0..clusters-1 plus one shared lane. */
        std::uint32_t clusters = 1;
        /** Worker threads (clamped to the lane count). */
        std::uint32_t shards = 2;
        /** Sync window width in ticks (clamped up to 1). */
        Tick window = 1;
    };

    ShardRuntime(EventQueue &eq, const Params &p);
    ShardRuntime(const ShardRuntime &) = delete;
    ShardRuntime &operator=(const ShardRuntime &) = delete;
    ~ShardRuntime();

    /**
     * Take over the queue: move its pending events into the lanes
     * (in (tick, seq) order, so pre-attach FIFO ties survive) and
     * start the worker pool. The queue routes every kernel operation
     * through this runtime until detach().
     */
    void attach();

    /**
     * Release the queue: stop the workers, fold the lanes' dispatch
     * counts and any still-pending events back into the queue, and
     * restore serial operation.
     */
    void detach();

    std::uint32_t
    laneCount() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }
    std::uint32_t shardCount() const { return shards_; }
    Tick window() const { return window_; }

    /**
     * Attach a per-lane profiler (null detaches). Lane profilers see
     * only their lane's events; the driver merges them into the main
     * profile after the run (SimProfiler::mergeFrom).
     */
    void setLaneProfiler(std::uint32_t lane, SimProfiler *prof);

    /** @name Window-loop statistics @{ */
    std::uint64_t windowsRun() const { return windows_; }
    /** Cross-lane events whose tick was clamped up to a horizon. */
    std::uint64_t clampedEvents() const { return clamped_; }
    /** Largest single clamp applied (bounded by window()). */
    Tick maxClampTicks() const { return maxClamp_; }
    /** Cross-lane events routed through mailboxes. */
    std::uint64_t crossLaneEvents() const;
    /** @} */

    /**
     * @name Thread-local execution context
     *
     * While a worker runs a lane, that lane's index is visible to
     * the components executing inside it; per-lane state (RNG
     * streams, round-robin cursors, stat counters) indexes on it.
     * Outside a lane (coordinator, attach/detach, serial mode) there
     * is no current lane.
     * @{
     */
    /** Executing lane index, or laneNone outside a lane. */
    static std::uint32_t currentLane();
    static constexpr std::uint32_t laneNone = 0xffffffffu;
    /**
     * Executing lane clamped into [0, lanes): coordinator-context
     * work belongs to the shared lane (lanes - 1).
     */
    static std::uint32_t
    currentLaneOr(std::uint32_t lanes)
    {
        const std::uint32_t l = currentLane();
        return l < lanes ? l : lanes - 1;
    }
    /** @} */

    /**
     * @name Facade entry points
     *
     * The attached EventQueue forwards its public operations here;
     * components keep their single EventQueue reference and stay
     * oblivious to the sharding.
     * @{
     */
    void routeSchedule(Tick when, EvTag tag, EventQueue::Callback cb);
    Tick currentNow() const;
    SimProfiler *currentProfiler() const;
    std::size_t pendingEvents() const;
    std::uint64_t laneDispatched() const;
    bool runUntil(Tick limit);
    EventQueue::RunResult runUntil(Tick limit,
                                   std::uint64_t max_events);
    /** @} */

  private:
    struct Pending
    {
        Tick when;
        EvTag tag;
        EventQueue::Callback cb;
    };

    struct Lane
    {
        EventQueue q;
        /**
         * outbox[dst]: events this lane scheduled for lane dst in
         * the current window. Single producer (the worker executing
         * this lane); consumed by the coordinator at the barrier.
         */
        std::vector<std::vector<Pending>> outbox;
        std::uint64_t crossLane = 0;
    };

    /** Map a node partition id onto a lane index. */
    std::uint32_t
    laneOf(std::uint16_t part) const
    {
        const auto lanes = static_cast<std::uint32_t>(lanes_.size());
        return part < lanes - 1 ? part : lanes - 1;
    }

    EventQueue::RunResult runWindowed(Tick limit,
                                      std::uint64_t max_events);
    /** Earliest pending tick across lanes; false when all drained. */
    bool earliestPending(Tick &out) const;
    /** Release the workers for one window and run shard 0's lanes. */
    void runWindow();
    void runOwnedLanes(std::uint32_t shard);
    void drainMailboxes();
    void workerLoop(std::uint32_t shard);

    EventQueue &eq_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::uint32_t shards_;
    Tick window_;
    bool attached_ = false;

    /** Facade now() for coordinator-context reads (heartbeats). */
    Tick coordNow_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t clamped_ = 0;
    Tick maxClamp_ = 0;

    /**
     * Window barrier. The coordinator publishes horizon_, bumps
     * epoch_ (release) and waits for arrived_ to reach the worker
     * count; each worker waits for a new epoch (acquire), runs its
     * lanes to the horizon and bumps arrived_ (release). The
     * epoch/arrived pair carries the happens-before edges for all
     * lane and mailbox state.
     */
    Tick horizon_ = 0;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> workers_;
};

} // namespace umany

#endif // UMANY_SIM_SHARD_HH
