#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace umany
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < _now) {
        panic("event scheduled in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast is the
    // standard idiom for pop-with-move on a binary heap.
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    _now = e.when;
    ++dispatched_;
    e.cb();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        if (heap_.top().when > limit) {
            _now = limit;
            return false;
        }
        step();
    }
    return true;
}

void
EventQueue::reset()
{
    heap_ = {};
    _now = 0;
    nextSeq_ = 0;
    dispatched_ = 0;
}

} // namespace umany
