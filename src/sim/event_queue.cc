#include "sim/event_queue.hh"

#include <limits>

#include "obs/simprof.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"

namespace umany
{

EventQueue::EventQueue()
{
    slab_.reserve(initialCapacity);
    free_.reserve(initialCapacity);
    heap_.reserve(initialCapacity);
}

void
EventQueue::reserve(std::size_t events)
{
    slab_.reserve(events);
    free_.reserve(events);
    heap_.reserve(events);
}

void
EventQueue::schedule(Tick when, EvTag tag, Callback cb)
{
    if (runtime_ != nullptr) {
        runtime_->routeSchedule(when, tag, std::move(cb));
        return;
    }
    if (when < _now) {
        panic("event scheduled in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    if (prof_ != nullptr)
        prof_->onSchedule(tag, when - _now);
    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
        slab_[slot] = std::move(cb);
    } else {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.push_back(std::move(cb));
    }
    heap_.push_back(Node{when, nextSeq_++, slot, tag.src, 0,
                         tag.part});
    siftUp(heap_.size() - 1);
}

EventQueue::Node
EventQueue::popTop()
{
    const Node top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return top;
}

void
EventQueue::siftUp(std::size_t i)
{
    const Node n = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / arity;
        if (!before(n, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = n;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t count = heap_.size();
    const Node n = heap_[i];
    for (;;) {
        const std::size_t first = i * arity + 1;
        if (first >= count)
            break;
        const std::size_t last =
            first + arity < count ? first + arity : count;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], n))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = n;
}

Tick
EventQueue::shardNow() const
{
    return runtime_->currentNow();
}

std::size_t
EventQueue::shardSize() const
{
    return runtime_->pendingEvents();
}

std::uint64_t
EventQueue::shardDispatched() const
{
    return runtime_->laneDispatched();
}

SimProfiler *
EventQueue::shardProfiler() const
{
    return runtime_->currentProfiler();
}

bool
EventQueue::step()
{
    if (runtime_ != nullptr)
        panic("EventQueue::step() is serial-only; detach the shards");
    if (heap_.empty())
        return false;
    const Node top = popTop();
    // Move the callback out before invoking: the callback may
    // schedule new events and grow the slab, and its slot must be
    // reusable by those insertions.
    Callback cb = std::move(slab_[top.slot]);
    free_.push_back(top.slot);
    _now = top.when;
    ++dispatched_;
    cb();
    if (prof_ != nullptr) {
        prof_->onExecuted(EvTag{top.src, top.part}, heap_.size(),
                          _now);
    }
    return true;
}

void
EventQueue::run()
{
    if (runtime_ != nullptr) {
        runtime_->runUntil(std::numeric_limits<Tick>::max());
        return;
    }
    while (step()) {
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    if (runtime_ != nullptr)
        return runtime_->runUntil(limit);
    while (!heap_.empty()) {
        if (heap_.front().when > limit) {
            _now = limit;
            return false;
        }
        step();
    }
    return true;
}

EventQueue::RunResult
EventQueue::runUntil(Tick limit, std::uint64_t max_events)
{
    if (runtime_ != nullptr)
        return runtime_->runUntil(limit, max_events);
    while (!heap_.empty()) {
        if (heap_.front().when > limit) {
            _now = limit;
            return RunResult::Limited;
        }
        if (max_events == 0)
            return RunResult::Budget;
        --max_events;
        step();
    }
    return RunResult::Drained;
}

void
EventQueue::reset()
{
    if (runtime_ != nullptr)
        panic("EventQueue::reset() is serial-only; detach the shards");
    // clear(), not reassignment: capacity stays warm for the next
    // run in this process.
    heap_.clear();
    slab_.clear();
    free_.clear();
    _now = 0;
    nextSeq_ = 0;
    dispatched_ = 0;
}

} // namespace umany
