#include "sim/config.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace umany
{

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // GNU-style flags are accepted as sugar: "--trace-out=x" is
        // the same key as "trace_out=x".
        const bool flag = arg.rfind("--", 0) == 0;
        if (flag)
            arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0) {
            // A bare "--flag" is boolean sugar for "flag=true"
            // ("--run-summary" == "--run-summary=true"); bare words
            // without dashes stay errors to catch typos.
            if (flag && eq == std::string::npos && !arg.empty()) {
                set(arg, "true");
                continue;
            }
            fatal("bad argument '%s': expected key=value", arg.c_str());
        }
        set(arg.substr(0, eq), arg.substr(eq + 1));
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    std::string k = key;
    for (char &c : k) {
        if (c == '-')
            c = '_';
    }
    values_[k] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

const std::string &
Config::rawOrFatal(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        fatal("missing required config key '%s'", key.c_str());
    return it->second;
}

std::string
Config::getString(const std::string &key) const
{
    return rawOrFatal(key);
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key) const
{
    const std::string &raw = rawOrFatal(key);
    char *end = nullptr;
    const long long v = std::strtoll(raw.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        fatal("config key '%s'='%s' is not an integer", key.c_str(),
              raw.c_str());
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    return has(key) ? getInt(key) : def;
}

double
Config::getDouble(const std::string &key) const
{
    const std::string &raw = rawOrFatal(key);
    char *end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == nullptr || *end != '\0')
        fatal("config key '%s'='%s' is not a number", key.c_str(),
              raw.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    return has(key) ? getDouble(key) : def;
}

bool
Config::getBool(const std::string &key) const
{
    const std::string &raw = rawOrFatal(key);
    if (raw == "true" || raw == "1" || raw == "yes" || raw == "on")
        return true;
    if (raw == "false" || raw == "0" || raw == "no" || raw == "off")
        return false;
    fatal("config key '%s'='%s' is not a boolean", key.c_str(),
          raw.c_str());
}

bool
Config::getBool(const std::string &key, bool def) const
{
    return has(key) ? getBool(key) : def;
}

} // namespace umany
