#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

namespace umany
{

void
Summary::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Summary::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    mean_ = (mean_ * na + other.mean_ * nb) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Summary::clear()
{
    *this = Summary();
}

} // namespace umany
