/**
 * @file
 * Streaming scalar summary: count/mean/variance/min/max via Welford's
 * algorithm. Used for utilization counters and quick aggregates where
 * a full histogram is overkill.
 */

#ifndef UMANY_STATS_SUMMARY_HH
#define UMANY_STATS_SUMMARY_HH

#include <cstdint>

namespace umany
{

/** Streaming mean/stddev/min/max accumulator. */
class Summary
{
  public:
    /** Record one sample. */
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Merge another summary into this one. */
    void merge(const Summary &other);

    /** Forget all samples. */
    void clear();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace umany

#endif // UMANY_STATS_SUMMARY_HH
