#include "stats/cdf.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace umany
{

void
Cdf::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
Cdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Cdf::at(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
Cdf::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Cdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
Cdf::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.front();
}

double
Cdf::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

std::vector<std::pair<double, double>>
Cdf::curve(std::size_t points, double lo, double hi) const
{
    std::vector<std::pair<double, double>> out;
    if (points < 2 || samples_.empty())
        return out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(points - 1);
        out.emplace_back(x, at(x));
    }
    return out;
}

std::string
Cdf::format(std::size_t points, double lo, double hi) const
{
    std::string s;
    for (const auto &[x, f] : curve(points, lo, hi))
        s += strprintf("%12.2f  %6.4f\n", x, f);
    return s;
}

} // namespace umany
