/**
 * @file
 * Log-bucketed histogram with percentile queries (HDR-style).
 *
 * Latency distributions in this repo span 5+ orders of magnitude
 * (sub-microsecond NoC hops to tens-of-milliseconds saturated tails),
 * so buckets are log-spaced with 64 linear sub-buckets per octave,
 * giving <= ~1.6% relative error on any percentile while using O(KB)
 * of memory regardless of sample count.
 */

#ifndef UMANY_STATS_HISTOGRAM_HH
#define UMANY_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace umany
{

/** Histogram over non-negative 64-bit values. */
class Histogram
{
  public:
    /** Octaves above the exact range in the default layout; covers
     *  any 64-bit value. */
    static constexpr int defaultOctaves = 60;

    /**
     * @param octaves Log-bucket octaves above the exact sub-64
     * range. Smaller layouts save memory when the value range is
     * known (adding a value beyond the range is fatal); histograms
     * of different octave counts merge fine (see merge()).
     */
    explicit Histogram(int octaves = defaultOctaves);

    /** Record one sample. */
    void add(std::uint64_t value);

    /** Record @p n identical samples. */
    void add(std::uint64_t value, std::uint64_t n);

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Mean of recorded samples (0 when empty). */
    double mean() const;

    /** Smallest recorded sample (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /** Largest recorded sample (0 when empty). */
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /**
     * Value at quantile @p q in [0, 1]; e.g. 0.99 for P99.
     * Returns the representative (upper-edge) value of the bucket
     * containing the quantile. 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    /** Convenience: 99th percentile. */
    std::uint64_t p99() const { return quantile(0.99); }

    /** Convenience: 50th percentile. */
    std::uint64_t p50() const { return quantile(0.50); }

    /**
     * Fraction of samples strictly greater than @p threshold.
     *
     * Bucket convention matches quantile(): every sample in a bucket
     * reports as the bucket's upper-edge value. The bucket containing
     * @p threshold therefore counts as above iff its upper edge is
     * strictly greater than @p threshold (i.e. the threshold lands
     * mid-bucket); a threshold exactly on a bucket's upper edge
     * excludes that bucket. Values < 64 are bucketed exactly, so the
     * result is exact there; above that it is correct to within one
     * bucket (<= ~1.6% relative error on the threshold).
     */
    double fractionAbove(std::uint64_t threshold) const;

    /**
     * Merge another histogram into this one. Layouts may differ in
     * octave count (see the constructor): this histogram grows to
     * the larger of the two layouts, so no bucket of @p other is
     * ever dropped or read out of range.
     */
    void merge(const Histogram &other);

    /** Forget all samples. */
    void clear();

  private:
    // 64 sub-buckets per octave; values < 64 are exact.
    static constexpr int subBucketBits = 6;
    static constexpr std::uint64_t subBucketCount = 1ull << subBucketBits;

    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;

    static std::size_t indexFor(std::uint64_t value);
    static std::uint64_t valueFor(std::size_t index);
};

} // namespace umany

#endif // UMANY_STATS_HISTOGRAM_HH
