/**
 * @file
 * Empirical CDF builder used by the characterization figures
 * (Fig 2 RPS, Fig 4 CPU utilization, Fig 5 RPC count).
 */

#ifndef UMANY_STATS_CDF_HH
#define UMANY_STATS_CDF_HH

#include <cstdint>
#include <string>
#include <vector>

namespace umany
{

/**
 * Collects raw samples and answers CDF/quantile queries.
 *
 * Sample storage is O(n); intended for characterization runs with
 * up to a few million samples, not for per-request latency (use
 * Histogram for that).
 */
class Cdf
{
  public:
    /** Record one sample. */
    void add(double x);

    std::size_t count() const { return samples_.size(); }

    /** Fraction of samples <= x. */
    double at(double x) const;

    /** Value at quantile q in [0,1]. */
    double quantile(double q) const;

    double mean() const;
    double min() const;
    double max() const;

    /**
     * Evaluate the CDF on @p points grid points spanning
     * [min, max] (or [lo, hi] if given) and return (x, F(x)) pairs.
     */
    std::vector<std::pair<double, double>>
    curve(std::size_t points, double lo, double hi) const;

    /** Render the CDF as an ASCII table, one "x F(x)" row per point. */
    std::string
    format(std::size_t points, double lo, double hi) const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;

    void ensureSorted() const;
};

} // namespace umany

#endif // UMANY_STATS_CDF_HH
