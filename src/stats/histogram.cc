#include "stats/histogram.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace umany
{

Histogram::Histogram(int octaves)
{
    if (octaves < 1)
        panic("histogram needs at least one octave (got %d)", octaves);
    counts_.assign(subBucketCount * static_cast<std::size_t>(octaves),
                   0);
}

std::size_t
Histogram::indexFor(std::uint64_t value)
{
    if (value < subBucketCount)
        return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int octave = msb - subBucketBits + 1;
    const std::uint64_t sub =
        (value >> (msb - subBucketBits)) & (subBucketCount - 1);
    return static_cast<std::size_t>(octave) * subBucketCount +
           static_cast<std::size_t>(sub) + subBucketCount;
}

std::uint64_t
Histogram::valueFor(std::size_t index)
{
    if (index < subBucketCount)
        return index;
    const std::size_t adjusted = index - subBucketCount;
    const int octave = static_cast<int>(adjusted / subBucketCount);
    const std::uint64_t sub = adjusted % subBucketCount;
    const int msb = octave + subBucketBits - 1;
    const std::uint64_t base = (1ull << msb) | (sub << (msb - subBucketBits));
    // Upper edge of the bucket (next representable value - 1).
    return base + (1ull << (msb - subBucketBits)) - 1;
}

void
Histogram::add(std::uint64_t value)
{
    add(value, 1);
}

void
Histogram::add(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = indexFor(value);
    if (idx >= counts_.size())
        panic("histogram index out of range");
    counts_[idx] += n;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_ += n;
    sum_ += static_cast<double>(value) * static_cast<double>(n);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (static_cast<double>(seen) >= target && counts_[i] > 0)
            return std::min(valueFor(i), max_);
    }
    return max_;
}

double
Histogram::fractionAbove(std::uint64_t threshold) const
{
    if (count_ == 0)
        return 0.0;
    const std::size_t cutoff = indexFor(threshold);
    std::uint64_t above = 0;
    // Same convention as quantile(): samples report as their bucket's
    // upper edge, so the threshold's own bucket counts iff the
    // threshold lands strictly below that edge (mid-bucket). The old
    // code skipped the cutoff bucket unconditionally, undercounting
    // every above-threshold sample that shares a bucket with the
    // threshold.
    if (cutoff < counts_.size() && valueFor(cutoff) > threshold)
        above += counts_[cutoff];
    for (std::size_t i = cutoff + 1; i < counts_.size(); ++i)
        above += counts_[i];
    return static_cast<double>(above) / static_cast<double>(count_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    // Layouts share the sub-bucket geometry and differ only in octave
    // count, so a shorter histogram is a prefix of a longer one: grow
    // to the larger layout instead of indexing other.counts_ past its
    // end (or silently dropping its tail buckets).
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    min_ = max_ = 0;
    sum_ = 0.0;
}

} // namespace umany
