/**
 * @file
 * gem5-style statistics dump: a flat registry of named scalar
 * statistics rendered as "name value # description" lines. The
 * cluster simulation exposes a collector that walks every machine,
 * network, NIC, and storage backend so a whole run can be inspected
 * or diffed from one text artifact.
 */

#ifndef UMANY_STATS_STATS_DUMP_HH
#define UMANY_STATS_STATS_DUMP_HH

#include <string>
#include <vector>

namespace umany
{

class ClusterSim;

/** One named scalar statistic. */
struct StatEntry
{
    std::string name;  //!< Hierarchical, e.g. "server0.net.msgs".
    double value = 0.0;
    std::string desc;
};

/** A flat, ordered collection of statistics. */
class StatsDump
{
  public:
    /** Append one entry. */
    void add(std::string name, double value, std::string desc);

    /** Entries in insertion order. */
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Value of a named stat; fatal when absent. */
    double value(const std::string &name) const;

    /** True if a stat with this name exists. */
    bool has(const std::string &name) const;

    /**
     * Render in gem5's text-stats style:
     *   name  value  # description
     */
    std::string format() const;

    /**
     * Render as a JSON array of {name, value, desc} objects (under a
     * top-level "stats" key) so runs can be diffed mechanically;
     * values are numerically identical to format()/value().
     */
    std::string formatJson() const;

  private:
    std::vector<StatEntry> entries_;
};

/**
 * Collect the full statistics tree of a cluster simulation:
 * per-server core/dispatcher utilization, context switches,
 * completed/rejected requests, network message/byte/latency
 * aggregates, top-NIC and storage counters, plus cluster-level
 * latency percentiles.
 */
StatsDump collectStats(ClusterSim &sim);

} // namespace umany

#endif // UMANY_STATS_STATS_DUMP_HH
