#include "stats/stats_dump.hh"

#include <algorithm>

#include "arch/cluster_sim.hh"
#include "fault/fault_state.hh"
#include "obs/json.hh"
#include "sim/logging.hh"

namespace umany
{

void
StatsDump::add(std::string name, double value, std::string desc)
{
    entries_.push_back(
        StatEntry{std::move(name), value, std::move(desc)});
}

double
StatsDump::value(const std::string &name) const
{
    for (const StatEntry &e : entries_) {
        if (e.name == name)
            return e.value;
    }
    fatal("no statistic named '%s'", name.c_str());
}

bool
StatsDump::has(const std::string &name) const
{
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const StatEntry &e) {
                           return e.name == name;
                       });
}

std::string
StatsDump::format() const
{
    std::size_t width = 0;
    for (const StatEntry &e : entries_)
        width = std::max(width, e.name.size());
    std::string out;
    for (const StatEntry &e : entries_) {
        out += strprintf("%-*s  %14.6g  # %s\n",
                         static_cast<int>(width), e.name.c_str(),
                         e.value, e.desc.c_str());
    }
    return out;
}

std::string
StatsDump::formatJson() const
{
    // Sorted by name so the artifact is diff-stable: two dumps of
    // the same run compare byte-for-byte even if collection order
    // changes (golden-figure and replay checks rely on this).
    std::vector<StatEntry> sorted = entries_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const StatEntry &a, const StatEntry &b) {
                         return a.name < b.name;
                     });
    JsonWriter w;
    w.beginObject();
    w.key("stats").beginArray();
    for (const StatEntry &e : sorted) {
        w.beginObject();
        w.key("name").value(e.name);
        w.key("value").value(e.value);
        w.key("desc").value(e.desc);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

StatsDump
collectStats(ClusterSim &sim)
{
    StatsDump d;

    d.add("sim.events",
          static_cast<double>(sim.eventq().dispatched()),
          "kernel events dispatched over the whole run");
    d.add("cluster.roots.completed",
          static_cast<double>(sim.completedRoots()),
          "root requests completed during recording");
    d.add("cluster.roots.rejected",
          static_cast<double>(sim.rejectedRoots()),
          "root requests rejected by admission control");
    d.add("cluster.roots.qos_violations",
          static_cast<double>(sim.qosViolations()),
          "roots exceeding the QoS threshold");
    d.add("cluster.latency.avg_ms",
          toMs(static_cast<Tick>(sim.allLatency().mean())),
          "mean end-to-end latency");
    d.add("cluster.latency.p50_ms", toMs(sim.allLatency().p50()),
          "median end-to-end latency");
    d.add("cluster.latency.p99_ms", toMs(sim.allLatency().p99()),
          "tail (P99) end-to-end latency");
    d.add("cluster.requests.in_flight",
          static_cast<double>(sim.requestsInFlight()),
          "requests still alive (0 after a drained run)");
    d.add("cluster.time.queued_us", sim.queuedTimeUs().mean(),
          "mean per-request time waiting in queues");
    d.add("cluster.time.blocked_us", sim.blockedTimeUs().mean(),
          "mean per-request time blocked on calls");
    d.add("cluster.time.running_us", sim.runningTimeUs().mean(),
          "mean per-request on-core time");
    d.add("cluster.time.cpu_utilization",
          sim.requestCpuUtilization().mean(),
          "mean per-request CPU utilization (sec 3.3)");

    // Recovery statistics only exist when the client-side recovery
    // policy is on: adding them unconditionally would change every
    // healthy run's byte-compared golden artifact.
    if (sim.recoveryEnabled()) {
        d.add("cluster.recovery.retries",
              static_cast<double>(sim.retries()),
              "root attempts relaunched after timeout/reject");
        d.add("cluster.recovery.timeouts",
              static_cast<double>(sim.timeouts()),
              "root attempts that exceeded the client deadline");
        d.add("cluster.recovery.shed_roots",
              static_cast<double>(sim.shedRoots()),
              "roots abandoned after the retry budget ran out");
        d.add("cluster.recovery.stale_responses",
              static_cast<double>(sim.staleResponses()),
              "responses arriving after their attempt timed out");
    }

    // Dispatch-policy statistics exist only under a non-default
    // policy (same golden-stability rule as the recovery block):
    // --dispatch=rr keeps every pre-existing artifact byte-identical.
    bool policyActive = false;
    for (ServerId s = 0; s < sim.numServers(); ++s) {
        policyActive = policyActive ||
                       sim.machine(s).dispatchKind() !=
                           DispatchKind::RoundRobin;
    }
    if (policyActive) {
        std::uint64_t dispatches = 0;
        std::uint64_t direct = 0;
        std::uint64_t steals = 0;
        std::uint64_t stealProbes = 0;
        std::uint64_t nicProbes = 0;
        std::uint64_t preempts = 0;
        for (ServerId s = 0; s < sim.numServers(); ++s) {
            Machine &m = sim.machine(s);
            dispatches += m.schedDispatches();
            direct += m.schedDirectDispatches();
            steals += m.schedSteals();
            stealProbes += m.schedStealProbes();
            nicProbes += m.schedNicProbes();
            preempts += m.schedPreemptions();
        }
        d.add("cluster.sched.dispatches",
              static_cast<double>(dispatches),
              "requests handed to a core (direct + stolen)");
        d.add("cluster.sched.direct_dispatches",
              static_cast<double>(direct),
              "requests dequeued from their home village RQ");
        d.add("cluster.sched.steals",
              static_cast<double>(steals),
              "requests stolen from a sibling village RQ");
        d.add("cluster.sched.steal_probes",
              static_cast<double>(stealProbes),
              "sibling RQ probes, successful or not");
        d.add("cluster.sched.nic_probes",
              static_cast<double>(nicProbes),
              "village depth probes issued by the NIC policy");
        d.add("cluster.sched.preemptions",
              static_cast<double>(preempts),
              "slice-expiry preemptions (SLO policy)");
    }

    for (ServerId s = 0; s < sim.numServers(); ++s) {
        Machine &m = sim.machine(s);
        const std::string base = strprintf("server%u.", s);
        d.add(base + "cores.utilization", m.avgCoreUtilization(),
              "mean core busy fraction");
        d.add(base + "cores.context_switches",
              static_cast<double>(m.contextSwitches()),
              "context switches across all cores");
        d.add(base + "sched.dispatcher_util",
              m.dispatcherUtilization(),
              "software scheduler core utilization (0 for HW)");
        d.add(base + "sched.dispatcher_ops",
              static_cast<double>(m.dispatcherOps()),
              "operations through the software scheduler");
        d.add(base + "requests.completed",
              static_cast<double>(m.completedRequests()),
              "service requests finished on this machine");
        d.add(base + "requests.rejected",
              static_cast<double>(m.rejectedRequests()),
              "service requests rejected on this machine");

        // Per-machine dispatch-policy counters, gated like the
        // cluster.sched.* block.
        if (m.dispatchKind() != DispatchKind::RoundRobin) {
            d.add(base + "sched.steals",
                  static_cast<double>(m.schedSteals()),
                  "requests this machine's cores stole");
            d.add(base + "sched.steal_probes",
                  static_cast<double>(m.schedStealProbes()),
                  "sibling RQ probes paid for, hit or miss");
            d.add(base + "sched.nic_probes",
                  static_cast<double>(m.schedNicProbes()),
                  "NIC depth probes for po2c/jsqd dispatch");
            d.add(base + "sched.preemptions",
                  static_cast<double>(m.schedPreemptions()),
                  "SLO slice preemptions on this machine");
        }

        const Network &net = m.network();
        d.add(base + "net.messages",
              static_cast<double>(net.messagesDelivered()),
              "ICN messages delivered");
        d.add(base + "net.latency_avg_ns",
              toNs(static_cast<Tick>(net.latencyHist().mean())),
              "mean ICN message latency");
        d.add(base + "net.link_util_mean",
              net.meanLinkUtilization(),
              "mean non-access link utilization");
        d.add(base + "net.link_util_max", net.maxLinkUtilization(),
              "hottest non-access link utilization");

        // Fault-mode statistics appear only on machines that were
        // armed for injection (same golden-stability rule as the
        // cluster.recovery.* block above).
        if (m.faultsArmed() || m.shedRequests() > 0) {
            d.add(base + "net.dead_links",
                  m.faultsArmed()
                      ? static_cast<double>(
                            m.faultState()->deadLinks())
                      : 0.0,
                  "links down at the end of the run");
            d.add(base + "net.reroutes",
                  static_cast<double>(net.reroutes()),
                  "mid-flight retransmits off dead links");
            d.add(base + "net.corrupt_retx",
                  static_cast<double>(net.corruptRetransmits()),
                  "retransmits after delivery corruption");
            d.add(base + "net.degraded",
                  static_cast<double>(net.degradedDeliveries()),
                  "messages delivered via loss recovery");
            d.add(base + "net.dropped",
                  static_cast<double>(net.messagesDropped()),
                  "droppable messages lost to partitions");
            d.add(base + "requests.shed_no_path",
                  static_cast<double>(m.shedRequests()),
                  "requests bounced at the NIC (no reachable "
                  "instance)");
        }

        d.add(base + "topnic.ingress_msgs",
              static_cast<double>(m.topNic().ingressMsgs()),
              "messages entering the package");
        d.add(base + "topnic.egress_msgs",
              static_cast<double>(m.topNic().egressMsgs()),
              "messages leaving the package");

        d.add(base + "storage.requests",
              static_cast<double>(
                  sim.server(s).storage().requests()),
              "storage-tier accesses");
        d.add(base + "storage.queueing_ms",
              toMs(sim.server(s).storage().totalQueueing()),
              "accumulated storage queueing time");
    }
    return d;
}

} // namespace umany
