/**
 * @file
 * A metrics registry with an OpenMetrics/Prometheus-text exporter.
 *
 * Simulation stats are point-in-time by nature, so the registry is
 * populated once at the end of a run rather than scraped live; the
 * text format is the standard one (`# TYPE` / `# HELP` metadata,
 * label sets, `# EOF` terminator) so the artifact feeds directly
 * into promtool, Grafana, or any OpenMetrics parser.
 */

#ifndef UMANY_STATS_METRICS_REGISTRY_HH
#define UMANY_STATS_METRICS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stats/histogram.hh"

namespace umany
{

class MetricsRegistry
{
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /** Point-in-time value. */
    void gauge(std::string_view name, std::string_view help,
               double value, Labels labels = {});

    /** Monotonic total (exported with the `_total` suffix). */
    void counter(std::string_view name, std::string_view help,
                 double value, Labels labels = {});

    /**
     * Distribution summary from a histogram: quantiles 0.5/0.9/
     * 0.99/0.999 plus `_sum` and `_count`. @p scale converts the
     * histogram's integer samples into the exported unit.
     */
    void summary(std::string_view name, std::string_view help,
                 const Histogram &h, double scale = 1.0,
                 Labels labels = {});

    /** The OpenMetrics text exposition, terminated by `# EOF`. */
    std::string openMetricsText() const;

    /**
     * Map an arbitrary stat name to a legal Prometheus metric name:
     * illegal characters become '_', and the `umany_` namespace
     * prefix is added when missing.
     */
    static std::string sanitizeName(std::string_view name);

    std::size_t families() const { return families_.size(); }

  private:
    struct Sample
    {
        std::string suffix; //!< Appended to the family name.
        Labels labels;
        double value;
    };

    struct Family
    {
        std::string name;
        std::string help;
        std::string type; //!< "gauge", "counter", "summary".
        std::vector<Sample> samples;
    };

    Family &family(std::string_view name, std::string_view help,
                   const char *type);

    std::vector<Family> families_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace umany

#endif // UMANY_STATS_METRICS_REGISTRY_HH
