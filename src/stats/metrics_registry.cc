#include "stats/metrics_registry.hh"

#include <cctype>
#include <cmath>

#include "sim/logging.hh"

namespace umany
{

namespace
{

/**
 * Format a sample value the way Prometheus clients do: integral
 * values without a fraction, everything else with enough digits to
 * round-trip reasonably.
 */
std::string
formatValue(double v)
{
    // Non-finite values get the OpenMetrics canonical spellings --
    // "%g" would print platform-dependent "nan"/"inf" forms that
    // parsers reject.
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "+Inf" : "-Inf";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strprintf("%lld", static_cast<long long>(v));
    return strprintf("%.9g", v);
}

std::string
escapeLabel(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

void
writeSample(std::string &out, const std::string &family,
            const MetricsRegistry::Labels &labels,
            const std::string &suffix, double value)
{
    out += family;
    out += suffix;
    if (!labels.empty()) {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : labels) {
            if (!first)
                out += ',';
            first = false;
            out += k;
            out += "=\"";
            out += escapeLabel(v);
            out += '"';
        }
        out += '}';
    }
    out += ' ';
    out += formatValue(value);
    out += '\n';
}

} // namespace

std::string
MetricsRegistry::sanitizeName(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 6);
    if (name.rfind("umany_", 0) != 0 && name.rfind("umany.", 0) != 0)
        out = "umany_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

MetricsRegistry::Family &
MetricsRegistry::family(std::string_view name, std::string_view help,
                        const char *type)
{
    std::string key = sanitizeName(name);
    const auto it = index_.find(key);
    if (it != index_.end())
        return families_[it->second];
    index_.emplace(key, families_.size());
    Family f;
    f.name = std::move(key);
    f.help = std::string(help);
    f.type = type;
    families_.push_back(std::move(f));
    return families_.back();
}

void
MetricsRegistry::gauge(std::string_view name, std::string_view help,
                       double value, Labels labels)
{
    family(name, help, "gauge")
        .samples.push_back(Sample{"", std::move(labels), value});
}

void
MetricsRegistry::counter(std::string_view name,
                         std::string_view help, double value,
                         Labels labels)
{
    family(name, help, "counter")
        .samples.push_back(
            Sample{"_total", std::move(labels), value});
}

void
MetricsRegistry::summary(std::string_view name,
                         std::string_view help, const Histogram &h,
                         double scale, Labels labels)
{
    Family &f = family(name, help, "summary");
    static constexpr double quantiles[] = {0.5, 0.9, 0.99, 0.999};
    for (const double q : quantiles) {
        Labels qls = labels;
        qls.emplace_back("quantile", strprintf("%g", q));
        f.samples.push_back(Sample{
            "", std::move(qls),
            static_cast<double>(h.quantile(q)) * scale});
    }
    f.samples.push_back(
        Sample{"_sum", labels,
               h.mean() * static_cast<double>(h.count()) * scale});
    f.samples.push_back(Sample{"_count", std::move(labels),
                               static_cast<double>(h.count())});
}

std::string
MetricsRegistry::openMetricsText() const
{
    std::string out;
    for (const Family &f : families_) {
        out += "# TYPE " + f.name + ' ' + f.type + '\n';
        if (!f.help.empty())
            out += "# HELP " + f.name + ' ' + f.help + '\n';
        for (const Sample &s : f.samples)
            writeSample(out, f.name, s.labels, s.suffix, s.value);
    }
    out += "# EOF\n";
    return out;
}

} // namespace umany
