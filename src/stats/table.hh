/**
 * @file
 * ASCII table formatting for bench output. Every figure/table bench
 * prints its rows through this so the output style is uniform.
 */

#ifndef UMANY_STATS_TABLE_HH
#define UMANY_STATS_TABLE_HH

#include <string>
#include <vector>

namespace umany
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 *   Table t({"app", "tail (ms)", "norm"});
 *   t.addRow({"Text", "4.1", "1.00"});
 *   std::cout << t.format();
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double cell with %.*f. */
    static std::string num(double v, int precision = 2);

    /** Render with aligned columns and a header separator. */
    std::string format() const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace umany

#endif // UMANY_STATS_TABLE_HH
