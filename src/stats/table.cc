#include "stats/table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace umany
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("table row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
Table::format() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += strprintf("%-*s", static_cast<int>(widths[c] + 2),
                              row[c].c_str());
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        sep += std::string(widths[c], '-');
        if (c + 1 < widths.size())
            sep += "  ";
    }
    out += sep + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

} // namespace umany
