#include "fault/fault_plan.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "fault/fault_state.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace umany
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDown:
        return "link_down";
      case FaultKind::LinkUp:
        return "link_up";
      case FaultKind::NodeDown:
        return "node_down";
      case FaultKind::VillageDown:
        return "village_down";
      case FaultKind::VillageUp:
        return "village_up";
      case FaultKind::Corruption:
        return "corrupt";
      case FaultKind::PackageDown:
        return "package_down";
      case FaultKind::PackageUp:
        return "package_up";
    }
    return "?";
}

namespace
{

bool
kindFromName(const std::string &name, FaultKind &out)
{
    for (const FaultKind k :
         {FaultKind::LinkDown, FaultKind::LinkUp, FaultKind::NodeDown,
          FaultKind::VillageDown, FaultKind::VillageUp,
          FaultKind::Corruption, FaultKind::PackageDown,
          FaultKind::PackageUp}) {
        if (name == faultKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

/** Pick @p count distinct elements of @p pool (order randomized). */
template <typename T>
std::vector<T>
pickDistinct(std::vector<T> pool, std::uint32_t count, Rng &rng)
{
    if (count > pool.size()) {
        warn("fault plan asked for %u targets but only %zu exist; "
             "clamping",
             count, pool.size());
        count = static_cast<std::uint32_t>(pool.size());
    }
    std::vector<T> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::size_t j = rng.below(pool.size());
        out.push_back(pool[j]);
        pool[j] = pool.back();
        pool.pop_back();
    }
    return out;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        double time_us = 0.0;
        std::string kind_name;
        if (!(fields >> time_us))
            continue; // Blank / comment-only line.
        if (!(fields >> kind_name))
            fatal("fault plan line %zu: missing kind", lineno);
        FaultEvent e;
        e.at = fromUs(time_us);
        if (!kindFromName(kind_name, e.kind)) {
            fatal("fault plan line %zu: unknown kind '%s'", lineno,
                  kind_name.c_str());
        }
        if (e.kind != FaultKind::Corruption &&
            !(fields >> e.target)) {
            fatal("fault plan line %zu: missing target", lineno);
        }
        std::string opt;
        while (fields >> opt) {
            if (opt.rfind("server=", 0) == 0) {
                e.server = static_cast<ServerId>(
                    std::strtoul(opt.c_str() + 7, nullptr, 10));
            } else if (opt.rfind("p=", 0) == 0) {
                e.prob = std::strtod(opt.c_str() + 2, nullptr);
            } else {
                fatal("fault plan line %zu: bad option '%s'", lineno,
                      opt.c_str());
            }
        }
        plan.add(e);
    }
    return plan;
}

FaultPlan
randomLinkFailures(const Topology &topo, std::uint32_t count,
                   Tick at, std::uint64_t seed, ServerId server)
{
    Rng rng(streamSeed(seed, rngstream::fault));
    FaultPlan plan;
    for (const LinkId id :
         pickDistinct(fabricLinks(topo), count, rng)) {
        plan.add({at, FaultKind::LinkDown, server, id, 0.0});
    }
    return plan;
}

FaultPlan
randomNodeFailures(const Topology &topo, std::uint32_t count,
                   Tick at, std::uint64_t seed, ServerId server)
{
    Rng rng(streamSeed(seed, rngstream::fault));
    FaultPlan plan;
    for (const NodeId id :
         pickDistinct(fabricNodes(topo), count, rng)) {
        plan.add({at, FaultKind::NodeDown, server,
                  static_cast<std::uint32_t>(id), 0.0});
    }
    return plan;
}

FaultPlan
randomVillageFailures(std::uint32_t numVillages, std::uint32_t count,
                      Tick at, std::uint64_t seed, ServerId server)
{
    std::vector<std::uint32_t> pool(numVillages);
    for (std::uint32_t v = 0; v < numVillages; ++v)
        pool[v] = v;
    Rng rng(streamSeed(seed, rngstream::fault));
    FaultPlan plan;
    for (const std::uint32_t v : pickDistinct(pool, count, rng))
        plan.add({at, FaultKind::VillageDown, server, v, 0.0});
    return plan;
}

FaultPlan
randomPackageFailures(std::uint32_t numPackages, std::uint32_t count,
                      Tick at, std::uint64_t seed)
{
    std::vector<std::uint32_t> pool(numPackages);
    for (std::uint32_t p = 0; p < numPackages; ++p)
        pool[p] = p;
    Rng rng(streamSeed(seed, rngstream::fault));
    FaultPlan plan;
    for (const std::uint32_t p : pickDistinct(pool, count, rng))
        plan.add({at, FaultKind::PackageDown, invalidId, p, 0.0});
    return plan;
}

} // namespace umany
