#include "fault/injector.hh"

#include "arch/cluster_sim.hh"
#include "fault/fault_state.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace umany
{

namespace
{

/** Static-literal trace name for @p kind (records keep pointers). */
const char *
traceName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDown:
        return "fault.link_down";
      case FaultKind::LinkUp:
        return "fault.link_up";
      case FaultKind::NodeDown:
        return "fault.node_down";
      case FaultKind::VillageDown:
        return "fault.village_down";
      case FaultKind::VillageUp:
        return "fault.village_up";
      case FaultKind::Corruption:
        return "fault.corrupt";
      case FaultKind::PackageDown:
        return "fault.package_down";
      case FaultKind::PackageUp:
        return "fault.package_up";
    }
    return "fault.?";
}

void
applyToMachine(Machine &m, ServerId, const FaultEvent &e)
{
    switch (e.kind) {
      case FaultKind::LinkDown:
      case FaultKind::LinkUp:
        m.armFaults().setLinkUp(e.target,
                                e.kind == FaultKind::LinkUp);
        break;
      case FaultKind::NodeDown: {
        FaultState &fs = m.armFaults();
        for (const LinkId l :
             linksTouchingNode(m.topology(), e.target)) {
            fs.setLinkUp(l, false);
        }
        break;
      }
      case FaultKind::VillageDown:
        m.setVillageUp(e.target, false);
        break;
      case FaultKind::VillageUp:
        m.setVillageUp(e.target, true);
        break;
      case FaultKind::Corruption:
        m.armFaults().setCorruptProb(e.prob);
        break;
      case FaultKind::PackageDown:
      case FaultKind::PackageUp:
        fatal("package faults target a RackSim, not a ClusterSim");
    }
    UMANY_TRACE(TraceSink::active()->instant(
        e.at, m.tracePid(), traceIcnTrack, traceName(e.kind),
        e.target, e.prob));
}

/** Whether @p kind needs a FaultState (vs ServiceMap liveness). */
bool
needsFaultState(FaultKind kind)
{
    return kind != FaultKind::VillageDown &&
           kind != FaultKind::VillageUp;
}

} // namespace

void
FaultInjector::applyNow(ClusterSim &sim, const FaultEvent &e)
{
    if (e.server != invalidId) {
        if (e.server >= sim.numServers()) {
            fatal("fault event targets server %u of %u", e.server,
                  sim.numServers());
        }
        applyToMachine(sim.machine(e.server), e.server, e);
        return;
    }
    for (ServerId s = 0; s < sim.numServers(); ++s)
        applyToMachine(sim.machine(s), s, e);
}

void
FaultInjector::arm(EventQueue &eq, ClusterSim &sim,
                   const FaultPlan &plan)
{
    // Attach fault state before traffic flows: arming is free until
    // an event fires, and doing it up front keeps the run's RNG
    // stream layout independent of when the first fault lands.
    for (const FaultEvent &e : plan.events) {
        if (!needsFaultState(e.kind))
            continue;
        if (e.server != invalidId) {
            if (e.server >= sim.numServers()) {
                fatal("fault event targets server %u of %u",
                      e.server, sim.numServers());
            }
            sim.machine(e.server).armFaults();
        } else {
            for (ServerId s = 0; s < sim.numServers(); ++s)
                sim.machine(s).armFaults();
        }
    }
    // Fault flips touch whole machines, so they belong to the
    // shared/external partition bucket (past the last cluster).
    const std::uint16_t ext_part = static_cast<std::uint16_t>(
        sim.machine(0).numClusters());
    for (const FaultEvent &e : plan.events) {
        eq.schedule(e.at, EvTag{EvSrc::Fault, ext_part},
                    [&sim, e]() { applyNow(sim, e); });
    }
}

} // namespace umany
