/**
 * @file
 * FaultPlan: a deterministic schedule of fault events applied to the
 * cluster at fixed ticks — link down/up, NH (switch) down, village
 * down/up, and message-corruption probability changes.
 *
 * Plans are data, not behavior: they can be built programmatically,
 * generated from a seeded RNG stream (the builders below), or parsed
 * from a small text format. The FaultInjector (fault/injector.hh)
 * turns a plan into scheduled events against a ClusterSim.
 */

#ifndef UMANY_FAULT_FAULT_PLAN_HH
#define UMANY_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace umany
{

class Topology;

/** What one FaultEvent does when it fires. */
enum class FaultKind : std::uint8_t
{
    LinkDown,    //!< target = LinkId
    LinkUp,      //!< target = LinkId
    NodeDown,    //!< target = NH NodeId; kills every incident link
    VillageDown, //!< target = VillageId; dispatch avoids it
    VillageUp,   //!< target = VillageId
    Corruption,  //!< prob = per-delivery corruption probability
    PackageDown, //!< target = rack package id (rack plans only)
    PackageUp,   //!< target = rack package id (rack plans only)
};

/** Printable name of @p kind (the parse() keyword). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    Tick at = 0;
    FaultKind kind = FaultKind::LinkDown;
    /** Server whose package is affected; invalidId = every server. */
    ServerId server = invalidId;
    /** Link / node / village id (kind-dependent; see FaultKind). */
    std::uint32_t target = 0;
    /** Corruption probability (FaultKind::Corruption only). */
    double prob = 0.0;
};

/** An ordered (by injector, not by construction) set of events. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    FaultPlan &
    add(const FaultEvent &e)
    {
        events.push_back(e);
        return *this;
    }

    /**
     * Parse a plan from text, one event per line:
     *
     *   <time_us> <kind> <target> [server=<N>] [p=<prob>]
     *
     * where <kind> is one of link_down, link_up, node_down,
     * village_down, village_up, corrupt, package_down, package_up
     * (the package kinds apply to rack plans only).
     * '#' starts a comment.
     * Malformed input is fatal (plans are trusted config).
     */
    static FaultPlan parse(const std::string &text);
};

/**
 * @name Seeded plan builders
 * Each draws from its own Rng stream (rngstream::fault salted with
 * @p seed) so the same seed always fails the same components,
 * independent of every other stream in the run.
 * @{
 */

/** Fail @p count distinct fabric links of @p topo at @p at. */
FaultPlan randomLinkFailures(const Topology &topo,
                             std::uint32_t count, Tick at,
                             std::uint64_t seed,
                             ServerId server = invalidId);

/** Fail @p count distinct NH nodes of @p topo at @p at. */
FaultPlan randomNodeFailures(const Topology &topo,
                             std::uint32_t count, Tick at,
                             std::uint64_t seed,
                             ServerId server = invalidId);

/** Fail @p count distinct villages (of @p numVillages) at @p at. */
FaultPlan randomVillageFailures(std::uint32_t numVillages,
                                std::uint32_t count, Tick at,
                                std::uint64_t seed,
                                ServerId server = invalidId);

/** Fail @p count distinct packages (of @p numPackages) at @p at
 *  (rack plans only; see rack/rack_sim.hh). */
FaultPlan randomPackageFailures(std::uint32_t numPackages,
                                std::uint32_t count, Tick at,
                                std::uint64_t seed);
/** @} */

} // namespace umany

#endif // UMANY_FAULT_FAULT_PLAN_HH
