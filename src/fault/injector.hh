/**
 * @file
 * FaultInjector: schedules a FaultPlan's events against a running
 * ClusterSim. Arming attaches a FaultState to every affected
 * machine up front (zero behavioral cost until something actually
 * goes down) and registers one event-queue callback per fault.
 */

#ifndef UMANY_FAULT_INJECTOR_HH
#define UMANY_FAULT_INJECTOR_HH

#include "fault/fault_plan.hh"

namespace umany
{

class ClusterSim;
class EventQueue;
class RackSim;

class FaultInjector
{
  public:
    /**
     * Arm @p sim with @p plan: every machine named by the plan (or
     * all machines, for cluster-wide events) gets its FaultState
     * created now, and each event is scheduled on @p eq at its tick.
     * Scheduled callbacks are self-contained — the injector object
     * itself need not outlive the call.
     *
     * Package-level kinds (PackageDown/PackageUp) are rack-only and
     * fatal here.
     */
    static void arm(EventQueue &eq, ClusterSim &sim,
                    const FaultPlan &plan);

    /** Apply one event to @p sim immediately (tests, REPL use). */
    static void applyNow(ClusterSim &sim, const FaultEvent &e);

    /**
     * Rack-level arming: package events mark the package down at the
     * load balancer AND fail every village inside it (a hard package
     * loss — in-flight work is shed, and recovery clients retrying
     * into the dead package keep timing out); every other kind is
     * forwarded to each package's ClusterSim, with `server` still
     * selecting the server within each package.
     */
    static void arm(EventQueue &eq, RackSim &rack,
                    const FaultPlan &plan);

    /** Apply one event to @p rack immediately. */
    static void applyNow(RackSim &rack, const FaultEvent &e);
};

} // namespace umany

#endif // UMANY_FAULT_INJECTOR_HH
