/**
 * @file
 * Live/dead state of a topology's links plus message-corruption
 * probability: the single structure the injector mutates and that
 * routing (Topology::route) and the Network consult.
 *
 * The state is intentionally passive — it holds no event logic. The
 * FaultInjector applies FaultPlan events to it at the scheduled
 * ticks; the Network and Machine read it on the hot path through
 * cheap inline checks so a healthy package (no FaultState armed, or
 * one with nothing failed) pays nothing beyond a null/zero test.
 */

#ifndef UMANY_FAULT_FAULT_STATE_HH
#define UMANY_FAULT_FAULT_STATE_HH

#include <cstdint>
#include <vector>

#include "noc/link.hh"
#include "sim/types.hh"

namespace umany
{

class Topology;

/** Mutable fault state over one topology instance. */
class FaultState
{
  public:
    /** All links start up; corruption starts at zero. */
    explicit FaultState(const Topology &topo);

    /** Whether link @p id is currently up. */
    bool
    linkUp(LinkId id) const
    {
        return up_[id] != 0;
    }

    /** Mark link @p id up or down (idempotent). */
    void setLinkUp(LinkId id, bool up);

    /** Number of links currently down. */
    std::size_t deadLinks() const { return deadLinks_; }

    /** Whether any link is down. */
    bool anyLinkDown() const { return deadLinks_ != 0; }

    /** Per-message corruption probability on final delivery. */
    double corruptProb() const { return corruptProb_; }
    void setCorruptProb(double p) { corruptProb_ = p; }

    /**
     * Whether the state currently perturbs anything — false means
     * routing and delivery behave exactly as with no FaultState.
     */
    bool
    active() const
    {
        return deadLinks_ != 0 || corruptProb_ > 0.0;
    }

    std::size_t linkCount() const { return up_.size(); }

  private:
    std::vector<std::uint8_t> up_;
    std::size_t deadLinks_ = 0;
    double corruptProb_ = 0.0;
};

/**
 * All links incident to NH node @p node (either direction, access
 * links included) — the set an NH-down fault kills.
 */
std::vector<LinkId> linksTouchingNode(const Topology &topo,
                                      NodeId node);

/** Distinct NH node ids appearing on fabric (non-access) links. */
std::vector<NodeId> fabricNodes(const Topology &topo);

/** LinkIds of fabric (non-access) links. */
std::vector<LinkId> fabricLinks(const Topology &topo);

} // namespace umany

#endif // UMANY_FAULT_FAULT_STATE_HH
