#include "fault/fault_state.hh"

#include <algorithm>

#include "noc/topology.hh"
#include "sim/logging.hh"

namespace umany
{

FaultState::FaultState(const Topology &topo)
    : up_(topo.links().size(), 1)
{
}

void
FaultState::setLinkUp(LinkId id, bool up)
{
    if (id >= up_.size())
        fatal("fault target link %u out of range (topology has %zu "
              "links)",
              id, up_.size());
    if ((up_[id] != 0) == up)
        return;
    up_[id] = up ? 1 : 0;
    if (up)
        --deadLinks_;
    else
        ++deadLinks_;
}

std::vector<LinkId>
linksTouchingNode(const Topology &topo, NodeId node)
{
    std::vector<LinkId> out;
    const auto &links = topo.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
        if (links[i].from == node || links[i].to == node)
            out.push_back(static_cast<LinkId>(i));
    }
    return out;
}

std::vector<NodeId>
fabricNodes(const Topology &topo)
{
    std::vector<NodeId> nodes;
    for (const LinkSpec &l : topo.links()) {
        if (l.access)
            continue;
        nodes.push_back(l.from);
        nodes.push_back(l.to);
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()),
                nodes.end());
    return nodes;
}

std::vector<LinkId>
fabricLinks(const Topology &topo)
{
    std::vector<LinkId> out;
    const auto &links = topo.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
        if (!links[i].access)
            out.push_back(static_cast<LinkId>(i));
    }
    return out;
}

} // namespace umany
