#include "rpc/network_hub.hh"

namespace umany
{

void
NetworkHub::countIntraCluster(std::uint32_t bytes)
{
    ++intraMsgs_;
    bytes_ += bytes;
}

void
NetworkHub::countIcn(std::uint32_t bytes)
{
    ++icnMsgs_;
    bytes_ += bytes;
}

void
NetworkHub::countExternal(std::uint32_t bytes)
{
    ++extMsgs_;
    bytes_ += bytes;
}

} // namespace umany
