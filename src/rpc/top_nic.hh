/**
 * @file
 * Package top-level NIC (§4.2): the interface between the package
 * and the external network. On μManycore it consults the ServiceMap
 * and dispatches to villages entirely in hardware; on the baselines
 * dispatch runs through the software dispatcher. Models external
 * link bandwidth occupancy in both directions.
 */

#ifndef UMANY_RPC_TOP_NIC_HH
#define UMANY_RPC_TOP_NIC_HH

#include <cstdint>

#include "sim/types.hh"

namespace umany
{

/** Top-level NIC parameters (Table 2: 200 GB/s, 1 μs RT external). */
struct TopNicParams
{
    double extGBs = 200.0;              //!< External link bandwidth.
    Tick extLatency = 500 * tickPerNs;  //!< One-way external latency.
    Cycles hwDispatchCycles = 24;       //!< HW ServiceMap walk.
    bool hardwareDispatch = true;
    double ghz = 2.0;
};

/** The package's external interface. */
class TopLevelNic
{
  public:
    explicit TopLevelNic(const TopNicParams &p) : p_(p) {}

    const TopNicParams &params() const { return p_; }

    /**
     * An external message of @p bytes reaches the NIC at @p now;
     * returns the tick when ingress processing is done (bandwidth
     * occupancy + hardware dispatch cost when enabled). Wire
     * latency is the sender's responsibility.
     */
    Tick ingress(Tick now, std::uint32_t bytes);

    /**
     * Outbound counterpart: returns the tick the message has left
     * the NIC (occupancy only; callers add extLatency for the wire).
     */
    Tick egress(Tick now, std::uint32_t bytes);

    /** One-way external wire latency (for callers). */
    Tick extLatency() const { return p_.extLatency; }

    /** Server id used as the pid of emitted trace events. */
    void setTracePid(std::uint32_t pid) { tracePid_ = pid; }

    std::uint64_t ingressMsgs() const { return in_; }
    std::uint64_t egressMsgs() const { return out_; }
    std::uint64_t ingressBytes() const { return inBytes_; }
    std::uint64_t egressBytes() const { return outBytes_; }

  private:
    TopNicParams p_;
    std::uint32_t tracePid_ = 0;
    Tick inFree_ = 0;
    Tick outFree_ = 0;
    std::uint64_t in_ = 0;
    std::uint64_t out_ = 0;
    std::uint64_t inBytes_ = 0;
    std::uint64_t outBytes_ = 0;

    Tick occupy(Tick now, std::uint32_t bytes, Tick &link_free);
};

} // namespace umany

#endif // UMANY_RPC_TOP_NIC_HH
