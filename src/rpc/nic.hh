/**
 * @file
 * Village NIC models (§4.1): each village has a local (L-NIC) port
 * for lossless on-package traffic and a remote (R-NIC) port for
 * lossy off-package traffic.
 *
 * On μManycore the NIC performs the RPC layer (header parsing,
 * de-serialization, service dispatch) in hardware — a fixed
 * pipeline latency and zero core cycles. The baselines run the RPC
 * layer in software on a core, so every message charges core time
 * to whoever handles it (§4.3, Cerebros-style "RPC tax").
 */

#ifndef UMANY_RPC_NIC_HH
#define UMANY_RPC_NIC_HH

#include <cstdint>

#include "sim/types.hh"

namespace umany
{

/** NIC processing-cost parameters. */
struct NicParams
{
    bool hardwareRpc = true;
    Tick hwPipelineLatency = 50 * tickPerNs; //!< 50 ns parse/dispatch.
    /** Software RPC layer cost per received message (core cycles). */
    Cycles swRxCycles = 45000;
    /** Software RPC layer cost per sent message (core cycles). */
    Cycles swTxCycles = 15000;
    /** Hardware send-path core cost (issuing the descriptor). */
    Cycles hwTxCycles = 20;
    double ghz = 2.0;
};

/** A village's NIC pair (L-port and R-port share the cost model). */
class VillageNic
{
  public:
    explicit VillageNic(const NicParams &p) : p_(p) {}

    const NicParams &params() const { return p_; }

    /** Fixed NIC latency on the receive path (hardware pipeline). */
    Tick rxLatency() const;

    /** Core cycles charged to the handler for one received message. */
    Cycles rxCoreCycles() const;

    /** Core cycles charged to the sender for one sent message. */
    Cycles txCoreCycles() const;

    /** Ticks version of txCoreCycles at the configured frequency. */
    Tick txCoreTime() const;

    /** Account one received / sent message. */
    void countRx() { ++rx_; }
    void countTx() { ++tx_; }

    std::uint64_t rxMessages() const { return rx_; }
    std::uint64_t txMessages() const { return tx_; }

  private:
    NicParams p_;
    std::uint64_t rx_ = 0;
    std::uint64_t tx_ = 0;
};

} // namespace umany

#endif // UMANY_RPC_NIC_HH
