#include "rpc/transport.hh"

namespace umany
{

RNicTransport::RNicTransport(const RNicTransportParams &p,
                             std::uint64_t seed)
    : p_(p), rng_(seed), window_(p.windowInit)
{
}

Tick
RNicTransport::sendPenalty()
{
    Tick penalty = p_.protocolOverhead;
    for (std::uint32_t attempt = 0; attempt < p_.maxRetries;
         ++attempt) {
        if (!rng_.chance(p_.lossProbability))
            break;
        ++retx_;
        penalty += p_.retransmitTimeout;
        // Multiplicative decrease on loss.
        window_ = std::max<std::uint32_t>(window_ / 2, 1);
    }
    return penalty;
}

void
RNicTransport::onAck()
{
    if (inFlight_ > 0)
        --inFlight_;
    // Additive increase per acknowledged message.
    if (window_ < p_.windowMax)
        ++window_;
}

Tick
RNicTransport::windowDelay(Tick rtt_estimate) const
{
    if (inFlight_ < window_)
        return 0;
    // Sender stalls roughly one RTT per window's worth of backlog.
    const std::uint32_t backlog = inFlight_ - window_ + 1;
    return rtt_estimate * backlog / std::max(window_, 1u);
}

} // namespace umany
