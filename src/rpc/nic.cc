#include "rpc/nic.hh"

namespace umany
{

Tick
VillageNic::rxLatency() const
{
    return p_.hwPipelineLatency;
}

Cycles
VillageNic::rxCoreCycles() const
{
    return p_.hardwareRpc ? 0 : p_.swRxCycles;
}

Cycles
VillageNic::txCoreCycles() const
{
    return p_.hardwareRpc ? p_.hwTxCycles : p_.swTxCycles;
}

Tick
VillageNic::txCoreTime() const
{
    return cyclesToTicks(static_cast<double>(txCoreCycles()), p_.ghz);
}

} // namespace umany
