#include "rpc/top_nic.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace umany
{

Tick
TopLevelNic::occupy(Tick now, std::uint32_t bytes, Tick &link_free)
{
    const Tick start = std::max(now, link_free);
    const double ns = static_cast<double>(bytes) / p_.extGBs;
    const Tick done = start + fromNs(ns);
    link_free = done;
    return done;
}

Tick
TopLevelNic::ingress(Tick now, std::uint32_t bytes)
{
    ++in_;
    inBytes_ += bytes;
    UMANY_TRACE(TraceSink::active()->instant(
        now, tracePid_, traceNicTrack, "nic.ingress", 0,
        static_cast<double>(bytes)));
    Tick done = occupy(now, bytes, inFree_);
    if (p_.hardwareDispatch) {
        done += cyclesToTicks(
            static_cast<double>(p_.hwDispatchCycles), p_.ghz);
    }
    return done;
}

Tick
TopLevelNic::egress(Tick now, std::uint32_t bytes)
{
    ++out_;
    outBytes_ += bytes;
    UMANY_TRACE(TraceSink::active()->instant(
        now, tracePid_, traceNicTrack, "nic.egress", 0,
        static_cast<double>(bytes)));
    return occupy(now, bytes, outFree_);
}

} // namespace umany
