/**
 * @file
 * Inter-server network (Table 2: 1 μs round trip, 200 GB/s): a
 * full-bisection fabric between the cluster's servers with
 * per-server ingress/egress bandwidth occupancy.
 */

#ifndef UMANY_RPC_INTER_SERVER_HH
#define UMANY_RPC_INTER_SERVER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace umany
{

/** Inter-server fabric parameters. */
struct InterServerParams
{
    std::uint32_t numServers = 10;
    Tick oneWayLatency = 500 * tickPerNs; //!< 1 μs round trip.
    double linkGBs = 200.0;               //!< Per-server NIC bandwidth.
};

/** Bandwidth-occupied point-to-point fabric. */
class InterServerNet
{
  public:
    explicit InterServerNet(const InterServerParams &p);

    const InterServerParams &params() const { return p_; }

    /**
     * Deliver @p bytes from @p src to @p dst starting at @p now.
     * @return Delivery tick at the destination server's NIC.
     */
    Tick send(ServerId src, ServerId dst, std::uint32_t bytes,
              Tick now);

    std::uint64_t messages() const { return messages_; }
    std::uint64_t bytes() const { return bytes_; }

  private:
    InterServerParams p_;
    std::vector<Tick> egressFree_;
    std::vector<Tick> ingressFree_;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace umany

#endif // UMANY_RPC_INTER_SERVER_HH
