#include "rpc/inter_server.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace umany
{

InterServerNet::InterServerNet(const InterServerParams &p) : p_(p)
{
    if (p_.numServers == 0)
        fatal("inter-server net needs at least one server");
    egressFree_.assign(p_.numServers, 0);
    ingressFree_.assign(p_.numServers, 0);
}

Tick
InterServerNet::send(ServerId src, ServerId dst, std::uint32_t nbytes,
                     Tick now)
{
    if (src >= p_.numServers || dst >= p_.numServers)
        panic("inter-server send %u -> %u out of range", src, dst);
    ++messages_;
    bytes_ += nbytes;

    const Tick ser = fromNs(static_cast<double>(nbytes) / p_.linkGBs);
    // Egress occupancy at the source.
    const Tick tx_start = std::max(now, egressFree_[src]);
    egressFree_[src] = tx_start + ser;
    // Propagation.
    const Tick arrive = tx_start + ser + p_.oneWayLatency;
    // Ingress occupancy at the destination.
    const Tick rx_done = std::max(arrive, ingressFree_[dst]) + ser;
    ingressFree_[dst] = rx_done;
    return rx_done;
}

} // namespace umany
