/**
 * @file
 * Transport models (§4.1): the L-NIC runs on the lossless
 * back-pressured on-package network and needs no retransmission or
 * congestion control; the R-NIC talks to the lossy external network
 * and pays for reliability: per-message protocol overhead, rare
 * retransmission timeouts, and an AIMD congestion window bounding
 * in-flight messages.
 */

#ifndef UMANY_RPC_TRANSPORT_HH
#define UMANY_RPC_TRANSPORT_HH

#include <cstdint>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace umany
{

/** R-NIC (lossy) transport parameters. */
struct RNicTransportParams
{
    Tick protocolOverhead = 120 * tickPerNs; //!< Hdrs, acks, timers.
    double lossProbability = 5e-4;
    Tick retransmitTimeout = 25 * tickPerUs;
    std::uint32_t maxRetries = 3;
    /** AIMD window limits. */
    std::uint32_t windowInit = 32;
    std::uint32_t windowMax = 256;
};

/**
 * Lossy-transport latency model. windowDelay() exposes the
 * congestion-window queueing: when in-flight messages exceed the
 * window, senders stall until acknowledgments free slots.
 */
class RNicTransport
{
  public:
    RNicTransport(const RNicTransportParams &p, std::uint64_t seed);

    /**
     * Per-message transport penalty: protocol overhead plus sampled
     * retransmission delays.
     */
    Tick sendPenalty();

    /** A message entered the network (takes a window slot). */
    void onSend() { ++inFlight_; }

    /** An acknowledgment arrived (frees a slot, grows the window). */
    void onAck();

    /** Additional stall if the window is exhausted (0 otherwise). */
    Tick windowDelay(Tick rtt_estimate) const;

    std::uint32_t window() const { return window_; }
    std::uint32_t inFlight() const { return inFlight_; }
    std::uint64_t retransmissions() const { return retx_; }

  private:
    RNicTransportParams p_;
    Rng rng_;
    std::uint32_t window_;
    std::uint32_t inFlight_ = 0;
    std::uint64_t retx_ = 0;
};

} // namespace umany

#endif // UMANY_RPC_TRANSPORT_HH
