/**
 * @file
 * Network hub accounting (§4.1): hubs are the switching elements of
 * the on-package ICN (the topology models their forwarding); this
 * class carries the per-cluster traffic counters machines expose.
 */

#ifndef UMANY_RPC_NETWORK_HUB_HH
#define UMANY_RPC_NETWORK_HUB_HH

#include <cstdint>
#include <string>

namespace umany
{

/** Per-cluster hub counters. */
class NetworkHub
{
  public:
    explicit NetworkHub(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void countIntraCluster(std::uint32_t bytes);
    void countIcn(std::uint32_t bytes);
    void countExternal(std::uint32_t bytes);

    std::uint64_t intraClusterMsgs() const { return intraMsgs_; }
    std::uint64_t icnMsgs() const { return icnMsgs_; }
    std::uint64_t externalMsgs() const { return extMsgs_; }
    std::uint64_t totalBytes() const { return bytes_; }

  private:
    std::string name_;
    std::uint64_t intraMsgs_ = 0;
    std::uint64_t icnMsgs_ = 0;
    std::uint64_t extMsgs_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace umany

#endif // UMANY_RPC_NETWORK_HUB_HH
