/**
 * @file
 * Cluster: a group of villages, a shared read-mostly memory pool
 * chiplet, and a network hub that is a leaf of the on-package ICN
 * (§4.1, Fig 10).
 */

#ifndef UMANY_ARCH_CLUSTER_HH
#define UMANY_ARCH_CLUSTER_HH

#include <memory>
#include <vector>

#include "mem/memory_pool.hh"
#include "noc/message.hh"
#include "rpc/network_hub.hh"
#include "sim/types.hh"

namespace umany
{

/** One cluster of a machine. */
struct Cluster
{
    ClusterId id = 0;
    std::vector<VillageId> villages;

    /** Pool endpoint on the ICN (invalidId when the machine has no
     *  memory pools, e.g. ServerClass). */
    EndpointId poolEndpoint = invalidId;

    std::unique_ptr<MemoryPool> pool;
    std::unique_ptr<NetworkHub> hub;

    Cluster() = default;
    explicit Cluster(ClusterId cid) : id(cid) {}
};

} // namespace umany

#endif // UMANY_ARCH_CLUSTER_HH
