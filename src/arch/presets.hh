/**
 * @file
 * Named machine configurations matching Table 2 and the evaluation:
 * μManycore, ScaleOut, ServerClass (iso-power 40-core / iso-area
 * 128-core), the Fig 15 ablation ladder, the Fig 19 topology
 * variants, and the Fig 7 mesh-ScaleOut variant.
 */

#ifndef UMANY_ARCH_PRESETS_HH
#define UMANY_ARCH_PRESETS_HH

#include "arch/machine.hh"

namespace umany
{

/** 1024-core μManycore (8 cores x 4 villages x 32 clusters). */
MachineParams uManycoreParams();

/**
 * μManycore with an alternative organization (Fig 19): cores per
 * village x villages per cluster x clusters must multiply to 1024.
 */
MachineParams uManycoreConfigParams(std::uint32_t cores_per_village,
                                    std::uint32_t villages_per_cluster,
                                    std::uint32_t clusters);

/** 1024-core ScaleOut baseline: fat tree, global coherence, software
 *  scheduling/context switching, one queue per 32-core cluster. */
MachineParams scaleOutParams();

/** ScaleOut with a 2D-mesh ICN (the Fig 7 mesh variant). */
MachineParams scaleOutMeshParams();

/** ServerClass multicore: 40 cores iso-power (default) or 128
 *  iso-area, 2D mesh, global coherence, software scheduling. */
MachineParams serverClassParams(std::uint32_t cores = 40);

/** @name Fig 15 ablation ladder (cumulative over ScaleOut) @{ */
/** ScaleOut + villages (coherence scoped to 8-core villages). */
MachineParams ablationVillages();
/** + leaf-spine ICN. */
MachineParams ablationLeafSpine();
/** + hardware request scheduling (RQ, NIC dispatch, HW RPC layer). */
MachineParams ablationHwSched();
/** + hardware context switching == full μManycore. */
MachineParams ablationHwCs();
/** @} */

} // namespace umany

#endif // UMANY_ARCH_PRESETS_HH
