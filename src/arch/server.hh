/**
 * @file
 * Server: one machine plus its slice of the storage tier. The
 * storage tier is external to the package (reached over the 1 μs
 * datacenter network) and has bounded concurrency, so it saturates
 * under overload like a real backing store.
 */

#ifndef UMANY_ARCH_SERVER_HH
#define UMANY_ARCH_SERVER_HH

#include <memory>
#include <queue>

#include "arch/machine.hh"
#include "sim/rng.hh"

namespace umany
{

/** Storage-tier parameters (per server). */
struct StorageParams
{
    std::uint32_t slots = 192;   //!< Concurrent I/Os served.
    double fastProb = 0.82;      //!< Cache-hit-style accesses.
    double fastMeanUs = 60.0;
    double slowMeanUs = 220.0;
};

/**
 * Bounded-concurrency storage model: an access takes an
 * exponentially distributed service time on one of `slots` servers
 * (M/G/k); arrivals beyond capacity queue.
 */
class StorageBackend
{
  public:
    StorageBackend(const StorageParams &p, std::uint64_t seed);

    /**
     * Issue one access arriving at @p when.
     * @return Completion tick at the storage tier.
     */
    Tick request(Tick when);

    std::uint64_t requests() const { return requests_; }
    Tick totalQueueing() const { return queueing_; }

  private:
    StorageParams p_;
    Rng rng_;
    // Min-heap of per-slot free times.
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        slots_;
    std::uint64_t requests_ = 0;
    Tick queueing_ = 0;
};

/** One server: machine + storage slice. */
class Server
{
  public:
    Server(EventQueue &eq, ServerId id, const MachineParams &mp,
           const StorageParams &sp, std::uint64_t seed);

    ServerId id() const { return id_; }
    Machine &machine() { return machine_; }
    const Machine &machine() const { return machine_; }
    StorageBackend &storage() { return storage_; }

  private:
    ServerId id_;
    Machine machine_;
    StorageBackend storage_;
};

} // namespace umany

#endif // UMANY_ARCH_SERVER_HH
