/**
 * @file
 * Machine: one server's processor package — cores grouped into
 * villages (L2/coherence domains) and clusters (ICN leaves), an
 * on-package interconnect, request queues (hardware RQs or software
 * queues), NICs, and the full intra-server request lifecycle.
 *
 * The three evaluated machines (μManycore, ScaleOut, ServerClass)
 * and all ablation/sensitivity variants are configurations of this
 * one engine; see arch/presets.hh.
 */

#ifndef UMANY_ARCH_MACHINE_HH
#define UMANY_ARCH_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "arch/cluster.hh"
#include "arch/village.hh"
#include "cpu/context.hh"
#include "cpu/core.hh"
#include "cpu/core_params.hh"
#include "mem/coherence.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "rpc/top_nic.hh"
#include "rpc/transport.hh"
#include "sched/dispatch_policy.hh"
#include "sched/dispatcher.hh"
#include "sched/queue_system.hh"
#include "sched/service_map.hh"
#include "sim/sim_object.hh"
#include "workload/service.hh"

namespace umany
{

class FaultState;
class InvariantChecker;

/** Full configuration of one machine. */
struct MachineParams
{
    std::string name = "uManycore";

    /** @name Structure @{ */
    std::uint32_t numCores = 1024;
    std::uint32_t coresPerVillage = 8;
    std::uint32_t villagesPerCluster = 4;
    bool hasMemoryPool = true;
    /** @} */

    /** @name Core @{ */
    CoreParams core;
    /** Execution-time multiplier vs the reference (manycore) core. */
    double perfFactor = 1.0;
    /**
     * §8 future work: heterogeneous villages. The first
     * floor(fraction * numVillages) villages get beefier cores with
     * the given (faster, < 1) time factor. 0 disables.
     */
    double bigVillageFraction = 0.0;
    double bigVillagePerfFactor = 0.8;
    /** @} */

    /** @name On-package ICN @{ */
    enum class Topo : std::uint8_t { Mesh, FatTree, LeafSpine };
    Topo topo = Topo::LeafSpine;
    Cycles hopCycles = 5;          //!< Table 2: 5 cycles per hop.
    double linkBytesPerTick = 0.002;
    bool icnContention = true;
    /** @} */

    /** @name Scheduling @{ */
    enum class Sched : std::uint8_t { HwRq, SwQueue };
    Sched sched = Sched::HwRq;
    std::uint32_t swQueueCount = 32;
    bool workStealing = false;
    std::uint32_t stealAttempts = 2;
    /** Fig 3: assign arrivals to random queues instead of by
     *  instance locality. */
    bool randomQueueAssignment = false;
    /**
     * Dispatch/scheduling policy (--dispatch=rr|po2c|jsqd|steal|slo).
     * RoundRobin is the paper's hardware dispatch and byte-identical
     * to the seed; steal/slo need the hardware RQ and fall back to
     * rr (with a warning) on software-scheduled machines.
     */
    DispatchPolicyParams dispatch;
    /** @} */

    /** @name Cost models @{ */
    ContextSwitchModel cs;
    HwRqParams rq;
    SwQueueParams swq;         //!< counts/ghz derived at build.
    DispatcherParams dispatcher;
    NicParams nic;
    TopNicParams topNic;
    CoherenceParams coherence;
    /** Fractional segment slowdown from directory indirection under
     *  global coherence. */
    double dirStallFactor = 0.04;
    /**
     * Directory/coherence data movement per nanosecond of segment
     * work under global coherence (bytes/ns). Flows village ->
     * random endpoint over the ICN, contending with latency-critical
     * messages (§4.1's "remote directory and network accesses").
     */
    double dirTrafficBytesPerNs = 0.10;
    /** Cap on one segment's directory-traffic message. */
    std::uint32_t dirTrafficMaxBytes = 128 * 1024;
    RNicTransportParams rnic;
    MemoryPoolParams pool;
    /** @} */
};

/**
 * Build the on-package topology @p p describes — the exact
 * construction Machine performs internally. Exposed so fault-plan
 * builders can enumerate the links/nodes of the machine they will
 * injure without instantiating a whole package.
 */
std::unique_ptr<Topology> makeTopology(const MachineParams &p);

/**
 * One server's processor package plus its request-execution engine.
 *
 * External integration points (set by the owning Server/ClusterSim
 * before traffic flows):
 *  - onRootComplete: a root request finished and its response left
 *    the package.
 *  - onStorageCall: a handler issued a storage access; the owner
 *    models the storage tier and later calls externalResponse().
 *  - onServiceCall: a handler invoked another service; the owner
 *    resolves placement and either calls localCall() back or ships
 *    the child to another server.
 *  - onRemoteChildFinished: a child whose parent lives on another
 *    server finished; the owner routes the response.
 *  - onChildConsumed: a local child's response was delivered; the
 *    owner may free it.
 */
class Machine : public SimObject
{
  public:
    Machine(std::string name, EventQueue &eq, const MachineParams &p,
            ServerId self, std::uint64_t seed);
    ~Machine() override;

    /** @name Wiring @{ */
    std::function<void(ServiceRequest *)> onRootComplete;
    std::function<void(ServiceRequest *, const CallStep &)>
        onStorageCall;
    std::function<void(ServiceRequest *, const CallStep &)>
        onServiceCall;
    std::function<void(ServiceRequest *)> onRemoteChildFinished;
    std::function<void(ServiceRequest *)> onChildConsumed;
    /** @} */

    /** Register a service instance in a village (placement). */
    void installInstance(ServiceId service, VillageId village);

    /** @name Fault injection @{ */
    /**
     * Create (on first call) and return this machine's fault state,
     * attaching it to the network. Until something is actually
     * marked down the armed state changes no behavior; a machine
     * with faults never armed pays nothing at all.
     */
    FaultState &armFaults();
    const FaultState *faultState() const { return faults_.get(); }
    bool faultsArmed() const { return faults_ != nullptr; }

    /** Mark a village up/down for dispatch (ServiceMap liveness). */
    void setVillageUp(VillageId v, bool up);

    /** Requests shed at the NIC for lack of a reachable instance. */
    std::uint64_t shedRequests() const;
    /** @} */

    /**
     * Enable parallel-DES sharding (sim/shard.hh): per-lane sequence
     * counters, RNG streams, stat counters, and service round-robin
     * cursors replace the shared ones, and the NoC switches to
     * owner-lane hop processing. Must run before traffic flows.
     */
    void enableSharding(std::uint32_t lanes);

    /** @name Entry points @{ */
    /**
     * A request (root or remote child) reaches the package's
     * top-level NIC at the current tick.
     */
    void externalArrival(ServiceRequest *req);

    /** A local parent calls a service hosted on this machine. */
    void localCall(ServiceRequest *child, VillageId from_village);

    /**
     * A response for @p parent arrives from the external world
     * (storage completion or remote child response).
     */
    void externalResponse(ServiceRequest *parent,
                          std::uint32_t bytes);

    /**
     * Ship @p req (a child destined for another server) out of the
     * package: village ICN -> top NIC egress -> lossy transport.
     * @p on_exit runs when the message is on the external wire.
     */
    void outboundRequest(ServiceRequest *req, VillageId from,
                         std::function<void()> on_exit);
    /** @} */

    /** @name Introspection and statistics @{ */
    const MachineParams &params() const { return p_; }
    ServerId serverId() const { return self_; }
    /**
     * Offset every trace pid this machine (and its sub-components)
     * emits: rack runs give package p's servers the pid block
     * [base, base + numServers), so packages trace into disjoint
     * namespaces of one shared sink. Zero (the default) keeps the
     * flat single-package pids byte-identical.
     */
    void setTracePidBase(std::uint32_t base);
    /** The pid this server's trace events carry. */
    std::uint32_t tracePid() const { return tracePidBase_ + self_; }
    std::uint32_t numVillages() const
    {
        return static_cast<std::uint32_t>(villages_.size());
    }
    std::uint32_t numClusters() const
    {
        return static_cast<std::uint32_t>(clusters_.size());
    }
    const Village &village(VillageId v) const { return villages_[v]; }
    Cluster &cluster(ClusterId c) { return clusters_[c]; }
    ServiceMap &serviceMap() { return serviceMap_; }
    const ServiceMap &serviceMap() const { return serviceMap_; }
    Network &network() { return *net_; }
    const Network &network() const { return *net_; }
    const Topology &topology() const { return *topo_; }
    TopLevelNic &topNic() { return *topNic_; }

    VillageId villageOfCore(CoreId c) const;
    ClusterId clusterOfVillage(VillageId v) const;
    EndpointId villageEndpoint(VillageId v) const;
    /**
     * Requests waiting to run in @p v's queue right now (HW RQ:
     * ready + NIC-buffered entries; SW: the village's shared queue).
     * Used by the observability sampler.
     */
    std::size_t villageQueueDepth(VillageId v) const;
    /** Per-village execution-time factor (heterogeneous villages). */
    double villagePerfFactor(VillageId v) const;

    std::uint64_t completedRequests() const;
    std::uint64_t rejectedRequests() const;
    std::uint64_t contextSwitches() const;

    /** @name Dispatch-policy introspection @{ */
    /** Effective policy (after the software-scheduling fallback). */
    DispatchKind dispatchKind() const { return dkind_; }
    /** Core pickups that began running a request (direct + steal). */
    std::uint64_t schedDispatches() const
    {
        return directDispatches_ + steals_;
    }
    std::uint64_t schedDirectDispatches() const
    {
        return directDispatches_;
    }
    /** Cross-village steals executed (HW RQ policy). */
    std::uint64_t schedSteals() const { return steals_; }
    /** Steal probes issued, failed ones included. */
    std::uint64_t schedStealProbes() const { return stealProbes_; }
    /** NIC depth probes issued by po2c/jsqd. */
    std::uint64_t schedNicProbes() const
    {
        return nicPolicy_ ? nicPolicy_->probesIssued() : 0;
    }
    /** Slice preemptions executed (Slo policy). */
    std::uint64_t schedPreemptions() const { return preempts_; }
    /** @} */
    double avgCoreUtilization() const;
    /** Utilization of the software dispatcher core (0 when absent). */
    double dispatcherUtilization() const;
    /** Dispatcher operations processed (0 when absent). */
    std::uint64_t dispatcherOps() const;
    const std::vector<Core> &cores() const { return cores_; }
    /** @} */

  private:
    MachineParams p_;
    ServerId self_;
    std::uint32_t tracePidBase_ = 0;
    std::uint64_t seed_;
    /** Coherence-traffic destination picks; the network, software
     *  queue system, and RNIC each get their own salted stream so
     *  subsystems cannot perturb each other's draws. */
    Rng rng_;

    std::unique_ptr<Topology> topo_;
    std::unique_ptr<Network> net_;
    std::vector<Core> cores_;
    std::vector<Village> villages_;
    std::vector<Cluster> clusters_;
    std::unique_ptr<SwQueueSystem> swq_;
    std::unique_ptr<SwDispatcher> dispatcher_;
    std::unique_ptr<TopLevelNic> topNic_;
    std::unique_ptr<RNicTransport> rnic_;
    ServiceMap serviceMap_;
    CoherenceModel coherence_;
    std::unique_ptr<FaultState> faults_;

    std::uint64_t nextSeq_ = 1;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t shedNoPath_ = 0;

    /** @name Dispatch policy (serial-mode only; non-rr policies are
     *  ineligible for sharding) @{ */
    DispatchKind dkind_ = DispatchKind::RoundRobin;
    std::unique_ptr<NicDispatchPolicy> nicPolicy_;
    /** Per-village deterministic steal cursor over siblings. */
    std::vector<std::uint32_t> stealCursor_;
    Tick sloBudget_ = 0;
    Tick sloSlice_ = 0;
    std::uint64_t directDispatches_ = 0;
    std::uint64_t steals_ = 0;
    std::uint64_t stealProbes_ = 0;
    std::uint64_t preempts_ = 0;
    /** @} */

    /** @name Parallel-DES mode @{ */
    bool sharded_ = false;
    /** Partition of the shared lane (== numClusters). */
    std::uint16_t extPart_ = evPartNone;
    /**
     * Per-lane sequence counters with disjoint value ranges: every
     * village's requests are numbered from its own lane, so the seq
     * order each RQ observes stays monotone (FCFS-correct) and
     * independent of the shard count.
     */
    std::vector<std::uint64_t> laneSeq_;
    std::vector<std::uint64_t> laneCompleted_;
    std::vector<std::uint64_t> laneRejected_;
    std::vector<std::uint64_t> laneShed_;
    std::vector<Rng> laneRng_;  //!< Coherence-destination picks.

    std::uint32_t curLane() const;
    std::uint64_t nextSeqFor();
    /** Round-robin instance pick; per-lane cursor when sharded. */
    VillageId pickInstance(ServiceId service);
    /** @} */

    /** @name Construction helpers @{ */
    void buildTopology();
    void buildStructure();
    /** @} */

    /** @name Time helpers @{ */
    Tick cyc(double cycles) const
    {
        return cyclesToTicks(cycles, p_.core.ghz);
    }
    /** @} */

    /** @name Event-tag helpers (self-profiling taxonomy) @{ */
    EvTag
    evTagV(EvSrc s, VillageId v) const
    {
        return EvTag{
            s, static_cast<std::uint16_t>(clusterOfVillage(v))};
    }
    EvTag
    evTagC(EvSrc s, CoreId c) const
    {
        return evTagV(s, villageOfCore(c));
    }
    /** Event on the shared lane (NIC, external fabric, storage). */
    EvTag evTagExt(EvSrc s) const { return EvTag{s, extPart_}; }
    /** @} */

    /** @name Lifecycle steps @{ */
    void villageIngress(ServiceRequest *req, VillageId v);
    void enqueueFresh(ServiceRequest *req);
    void reEnqueue(ServiceRequest *req);
    void tryWakeVillage(VillageId v);
    void tryWakeQueue(std::uint32_t q);
    void corePickup(CoreId core) { corePickup(core, true); }
    void corePickup(CoreId core, bool allow_steal);
    void startRun(CoreId core, ServiceRequest *req, Tick ready_at,
                  bool stolen = false);
    void runSegment(CoreId core, ServiceRequest *req);
    void sliceDone(CoreId core, ServiceRequest *req, Tick slice_ref);
    void segmentDone(CoreId core, ServiceRequest *req);
    void issueCallGroup(ServiceRequest *req, VillageId v);
    void finishRequest(ServiceRequest *req, VillageId v);
    void deliverChildResponse(ServiceRequest *parent,
                              ServiceRequest *child);
    void responseProcessed(ServiceRequest *parent);
    void rejectRequest(ServiceRequest *req);
    void releaseCore(CoreId core);
    void markIdle(CoreId core);
    /** @} */

    /** @name Policy dispatch helpers @{ */
    /**
     * Policy-aware instance pick. Probing policies (po2c/jsqd) read
     * candidate RQ depths and return the probe cost in
     * @p probe_delay; round-robin leaves it zero and is
     * byte-identical to pickInstance().
     */
    VillageId pickDispatch(ServiceId service, Tick &probe_delay);
    /**
     * Idle-core steal walk over the home cluster's sibling RQs:
     * up to stealAttempts probes at stealCycles each, charged into
     * @p done whether or not a victim had work (youngest-first per
     * the Corey schedule::steal() design).
     */
    ServiceRequest *trySteal(CoreId core, Tick &done);
    /** Slack of @p req against its SLO budget (Slo policy). */
    std::int64_t laxityOf(const ServiceRequest &req) const;
    ReadyList::KeyFn laxityKey() const;
    /** @} */

    /** @name Degraded-mode dispatch @{ */
    /** Whether dispatch must avoid dead villages/links right now. */
    bool degradedDispatch() const;
    /**
     * Round-robin pick of a live village hosting @p service that is
     * reachable from @p from; invalidId when none survives.
     */
    VillageId pickReachableVillage(ServiceId service,
                                   EndpointId from);
    /**
     * NIC-level rejection (no reachable instance): the request never
     * enters the package; the error response is bounced straight
     * from the NIC at @p ready_at.
     */
    void shedRequest(ServiceRequest *req, Tick ready_at);
    /** @} */

    /** Send an ICN message and run @p fn on delivery; a non-null
     *  @p drop runs instead when the pair is partitioned. */
    void sendIcn(EndpointId src, EndpointId dst, std::uint32_t bytes,
                 MsgClass cls, Network::DeliverFn fn,
                 Network::DropFn drop = nullptr);

    /**
     * Structural conservation laws audited by the invariant checker
     * (registered at construction when a checker is active):
     * RQ occupancy arithmetic, idle-registry vs core Work flags,
     * dispatcher serialization, and link occupancy bounds. With
     * @p final set, additionally requires full network quiescence
     * and all cores idle.
     */
    void auditInvariants(InvariantChecker &ic, bool final) const;

    std::uint32_t queueOfVillage(VillageId v) const;
    bool sameL2(CoreId a, CoreId b) const;
};

} // namespace umany

#endif // UMANY_ARCH_MACHINE_HH
