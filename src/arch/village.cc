#include "arch/village.hh"

#include <algorithm>

namespace umany
{

Village::Village(VillageId vid, ClusterId cid, EndpointId ep)
    : id(vid), cluster(cid), endpoint(ep)
{
}

bool
Village::hostsService(ServiceId s) const
{
    return std::find(services.begin(), services.end(), s) !=
           services.end();
}

} // namespace umany
