#include "arch/machine.hh"

#include <algorithm>
#include <cmath>

#include "fault/fault_state.hh"
#include "noc/fat_tree.hh"
#include "noc/leaf_spine.hh"
#include "noc/mesh.hh"
#include "obs/attrib.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "validate/invariants.hh"

namespace umany
{

Machine::Machine(std::string name, EventQueue &eq,
                 const MachineParams &p, ServerId self,
                 std::uint64_t seed)
    : SimObject(std::move(name), eq), p_(p), self_(self),
      seed_(seed), rng_(streamSeed(seed, rngstream::coherence)),
      coherence_(p.coherence)
{
    if (p_.numCores == 0 || p_.coresPerVillage == 0 ||
        p_.villagesPerCluster == 0) {
        fatal("machine '%s': structure parameters must be positive",
              p_.name.c_str());
    }
    if (p_.numCores % (p_.coresPerVillage * p_.villagesPerCluster) !=
        0) {
        fatal("machine '%s': %u cores do not divide into %ux%u "
              "villages/clusters",
              p_.name.c_str(), p_.numCores, p_.coresPerVillage,
              p_.villagesPerCluster);
    }
    buildTopology();
    buildStructure();

    // Dispatch-policy setup. Steal and Slo drive the hardware RQ
    // (entry adoption, policy-directed Dequeue); on software-
    // scheduled machines they degrade to round-robin, loudly.
    dkind_ = p_.dispatch.kind;
    if ((dkind_ == DispatchKind::Steal ||
         dkind_ == DispatchKind::Slo) &&
        p_.sched != MachineParams::Sched::HwRq) {
        warn("machine '%s': --dispatch=%s needs the hardware RQ; "
             "falling back to rr",
             p_.name.c_str(), dispatchKindName(dkind_));
        dkind_ = DispatchKind::RoundRobin;
    }
    if (p_.dispatch.probing()) {
        nicPolicy_ = std::make_unique<NicDispatchPolicy>(
            p_.dispatch, streamSeed(seed_, rngstream::dispatch));
    }
    sloBudget_ = fromUs(p_.dispatch.sloBudgetUs);
    sloSlice_ = fromUs(p_.dispatch.sloSliceUs);

    UMANY_INVARIANT({
        InvariantChecker *ic = InvariantChecker::active();
        // Qualified: the ctor's `name` parameter shadows the accessor.
        ic->addAuditor(SimObject::name(), [this](InvariantChecker &c) {
            auditInvariants(c, false);
        });
        ic->addFinalAuditor(SimObject::name(),
                            [this](InvariantChecker &c) {
            auditInvariants(c, true);
        });
    });
}

Machine::~Machine() = default;

std::unique_ptr<Topology>
makeTopology(const MachineParams &p)
{
    const std::uint32_t num_clusters =
        p.numCores / (p.coresPerVillage * p.villagesPerCluster);
    const std::uint32_t epl =
        p.villagesPerCluster + (p.hasMemoryPool ? 1 : 0);
    const Tick hop = cyclesToTicks(
        static_cast<double>(p.hopCycles), p.core.ghz);

    switch (p.topo) {
      case MachineParams::Topo::LeafSpine: {
        LeafSpineParams lp;
        lp.numLeaves = num_clusters;
        lp.podCount = num_clusters >= 32 ? 4
                      : num_clusters >= 16 ? 2 : 1;
        lp.spinesPerPod = 4;
        lp.l3Count = lp.podCount > 1 ? 8 : 0;
        if (lp.podCount == 1)
            lp.l3Count = 1; // Degenerate single-pod config.
        lp.endpointsPerLeaf = epl;
        lp.hopLatency = hop;
        lp.bytesPerTick = p.linkBytesPerTick;
        return std::make_unique<LeafSpine>(lp);
      }
      case MachineParams::Topo::FatTree: {
        FatTreeParams fp;
        fp.numLeaves = num_clusters;
        fp.endpointsPerLeaf = epl;
        fp.hopLatency = hop;
        fp.bytesPerTick = p.linkBytesPerTick;
        return std::make_unique<FatTree>(fp);
      }
      case MachineParams::Topo::Mesh: {
        MeshParams mp;
        mp.width = static_cast<std::uint32_t>(
            std::ceil(std::sqrt(static_cast<double>(num_clusters))));
        mp.height = (num_clusters + mp.width - 1) / mp.width;
        mp.endpointsPerNode = epl;
        mp.hopLatency = hop;
        mp.bytesPerTick = p.linkBytesPerTick;
        return std::make_unique<Mesh2D>(mp);
      }
    }
    panic("unknown topology kind %u",
          static_cast<unsigned>(p.topo));
}

void
Machine::buildTopology()
{
    topo_ = makeTopology(p_);

    net_ = std::make_unique<Network>(
        name() + ".net", eventq(), *topo_,
        streamSeed(seed_, rngstream::network));
    net_->setContention(p_.icnContention);
    net_->setTracePid(self_);

    // Endpoint -> cluster map for the self-profiler's traffic
    // matrix: leaf endpoints (villages and the per-cluster pool) map
    // to their cluster, everything else (the external/top-NIC
    // endpoint) to one "ext" bucket past the last cluster.
    const std::uint32_t num_clusters =
        p_.numCores / (p_.coresPerVillage * p_.villagesPerCluster);
    const std::uint32_t epl =
        p_.villagesPerCluster + (p_.hasMemoryPool ? 1 : 0);
    std::vector<std::uint16_t> parts(
        topo_->endpointCount(),
        static_cast<std::uint16_t>(num_clusters));
    for (std::size_t e = 0; e < parts.size(); ++e) {
        if (e < static_cast<std::size_t>(num_clusters) * epl)
            parts[e] = static_cast<std::uint16_t>(e / epl);
    }
    extPart_ = static_cast<std::uint16_t>(num_clusters);
    net_->setEndpointPartitions(std::move(parts));
}

void
Machine::buildStructure()
{
    const std::uint32_t num_villages = p_.numCores / p_.coresPerVillage;
    const std::uint32_t num_clusters =
        num_villages / p_.villagesPerCluster;
    const std::uint32_t epl =
        p_.villagesPerCluster + (p_.hasMemoryPool ? 1 : 0);

    // Cores.
    cores_.reserve(p_.numCores);
    for (CoreId c = 0; c < p_.numCores; ++c) {
        const VillageId v = c / p_.coresPerVillage;
        cores_.emplace_back(c, v, v / p_.villagesPerCluster);
    }

    // Villages and clusters.
    NicParams nic = p_.nic;
    nic.ghz = p_.core.ghz;
    HwRqParams rq = p_.rq;
    rq.ghz = p_.core.ghz;

    villages_.reserve(num_villages);
    for (VillageId v = 0; v < num_villages; ++v) {
        const ClusterId cid = v / p_.villagesPerCluster;
        const EndpointId ep =
            cid * epl + (v % p_.villagesPerCluster);
        villages_.emplace_back(v, cid, ep);
        Village &vil = villages_.back();
        for (std::uint32_t k = 0; k < p_.coresPerVillage; ++k)
            vil.cores.push_back(v * p_.coresPerVillage + k);
        vil.nic = std::make_unique<VillageNic>(nic);
        if (p_.sched == MachineParams::Sched::HwRq)
            vil.rq = std::make_unique<HwRq>(rq);
    }

    clusters_.reserve(num_clusters);
    for (ClusterId c = 0; c < num_clusters; ++c) {
        clusters_.emplace_back(Cluster(c));
        Cluster &cl = clusters_.back();
        for (std::uint32_t k = 0; k < p_.villagesPerCluster; ++k)
            cl.villages.push_back(c * p_.villagesPerCluster + k);
        cl.hub = std::make_unique<NetworkHub>(
            strprintf("%s.hub%u", name().c_str(), c));
        if (p_.hasMemoryPool) {
            cl.pool = std::make_unique<MemoryPool>(p_.pool);
            cl.poolEndpoint = c * epl + p_.villagesPerCluster;
        }
    }

    // Software scheduling substrate.
    if (p_.sched == MachineParams::Sched::SwQueue) {
        SwQueueParams sp = p_.swq;
        sp.numQueues = p_.swQueueCount;
        sp.numCores = p_.numCores;
        sp.workStealing = p_.workStealing;
        sp.stealAttempts = p_.stealAttempts;
        sp.ghz = p_.core.ghz;
        swq_ = std::make_unique<SwQueueSystem>(
            sp, streamSeed(seed_, rngstream::swqueue));
        swq_->setTracePid(self_);
    }
    // The centralized software scheduler core exists whenever
    // dispatch or context switching runs in software.
    if (p_.sched == MachineParams::Sched::SwQueue ||
        p_.cs.scheme != CsScheme::HardwareRq) {
        DispatcherParams dp = p_.dispatcher;
        dp.ghz = p_.core.ghz;
        dispatcher_ = std::make_unique<SwDispatcher>(dp);
        dispatcher_->setTracePid(self_);
    }

    TopNicParams tp = p_.topNic;
    tp.ghz = p_.core.ghz;
    tp.hardwareDispatch = p_.sched == MachineParams::Sched::HwRq;
    topNic_ = std::make_unique<TopLevelNic>(tp);
    topNic_->setTracePid(self_);
    rnic_ = std::make_unique<RNicTransport>(
        p_.rnic, streamSeed(seed_, rngstream::rnic));

    // All cores start idle.
    for (CoreId c = 0; c < p_.numCores; ++c)
        markIdle(c);

    stealCursor_.assign(num_villages, 0);
}

void
Machine::setTracePidBase(std::uint32_t base)
{
    // Re-seat every sub-component's trace pid: rack runs give each
    // package a disjoint pid block so one merged trace keeps servers
    // from different packages apart.
    tracePidBase_ = base;
    net_->setTracePid(tracePid());
    if (swq_)
        swq_->setTracePid(tracePid());
    if (dispatcher_)
        dispatcher_->setTracePid(tracePid());
    topNic_->setTracePid(tracePid());
}

VillageId
Machine::villageOfCore(CoreId c) const
{
    return c / p_.coresPerVillage;
}

ClusterId
Machine::clusterOfVillage(VillageId v) const
{
    return v / p_.villagesPerCluster;
}

EndpointId
Machine::villageEndpoint(VillageId v) const
{
    return villages_[v].endpoint;
}

std::uint32_t
Machine::queueOfVillage(VillageId v) const
{
    return swq_->queueOfCore(villages_[v].cores.front());
}

std::size_t
Machine::villageQueueDepth(VillageId v) const
{
    if (p_.sched == MachineParams::Sched::HwRq) {
        return villages_[v].rq->readyCount() +
               villages_[v].rq->bufferedCount();
    }
    return swq_->queueLength(queueOfVillage(v));
}

double
Machine::villagePerfFactor(VillageId v) const
{
    if (p_.bigVillageFraction <= 0.0)
        return 1.0;
    const auto big = static_cast<VillageId>(
        p_.bigVillageFraction * static_cast<double>(villages_.size()));
    return v < big ? p_.bigVillagePerfFactor : 1.0;
}

bool
Machine::sameL2(CoreId a, CoreId b) const
{
    return villageOfCore(a) == villageOfCore(b);
}

void
Machine::installInstance(ServiceId service, VillageId village)
{
    if (village >= villages_.size())
        fatal("installInstance: village %u out of range", village);
    serviceMap_.addInstance(service, village);
    villages_[village].services.push_back(service);
    if (villages_[village].rq)
        villages_[village].rq->registerService(service);
}

void
Machine::enableSharding(std::uint32_t lanes)
{
    sharded_ = true;
    laneSeq_.assign(lanes, 1);
    laneCompleted_.assign(lanes, 0);
    laneRejected_.assign(lanes, 0);
    laneShed_.assign(lanes, 0);
    laneRng_.clear();
    laneRng_.reserve(lanes);
    const std::uint64_t base = streamSeed(
        streamSeed(seed_, rngstream::coherence), rngstream::lane);
    for (std::uint32_t l = 0; l < lanes; ++l)
        laneRng_.emplace_back(streamSeed(base, l));
    serviceMap_.enableSharding(lanes);
    std::vector<std::uint16_t> owners;
    topo_->linkOwners(net_->endpointPartitions(), extPart_, owners);
    net_->enableSharding(lanes, std::move(owners));
}

std::uint32_t
Machine::curLane() const
{
    return ShardRuntime::currentLaneOr(
        static_cast<std::uint32_t>(laneSeq_.size()));
}

std::uint64_t
Machine::nextSeqFor()
{
    if (!sharded_)
        return nextSeq_++;
    const std::uint32_t l = curLane();
    return (static_cast<std::uint64_t>(l + 1) << 40) |
           laneSeq_[l]++;
}

VillageId
Machine::pickInstance(ServiceId service)
{
    return sharded_ ? serviceMap_.pickLane(service, curLane())
                    : serviceMap_.pick(service);
}

VillageId
Machine::pickDispatch(ServiceId service, Tick &probe_delay)
{
    probe_delay = 0;
    if (nicPolicy_ == nullptr)
        return pickInstance(service);
    // The probe reads total entry occupancy (running + blocked +
    // ready, plus NIC overflow), not just the ready backlog: at
    // moderate load ready counts tie at zero almost everywhere and
    // the probe would degenerate to random placement, which loses
    // to round-robin's even spread. Occupancy discriminates between
    // a village with idle cores and one whose entries are all
    // blocked on children. On a heterogeneous machine the signal is
    // expected drain time, not raw occupancy: (occupancy + the
    // request itself) scaled by the village's perf factor, so a
    // beefy village with the same backlog still probes shallower.
    // The x256 fixed-point scale keeps the key integral without
    // changing the ordering on homogeneous machines.
    const VillageId v = nicPolicy_->pick(
        serviceMap_.villagesOf(service), [this](VillageId c) {
            std::size_t occ;
            if (p_.sched == MachineParams::Sched::HwRq) {
                occ = static_cast<std::size_t>(
                          villages_[c].rq->inFlight()) +
                      villages_[c].rq->bufferedCount();
            } else {
                occ = villageQueueDepth(c);
            }
            return static_cast<std::size_t>(
                static_cast<double>((occ + 1) * 256) *
                villagePerfFactor(c));
        });
    // The NIC spends probeCycles per depth read before the request
    // can leave for its village.
    probe_delay =
        cyc(static_cast<double>(p_.dispatch.probeCycles) *
            static_cast<double>(nicPolicy_->lastProbes().size()));
    return v;
}

std::int64_t
Machine::laxityOf(const ServiceRequest &req) const
{
    const double scale =
        p_.perfFactor * villagePerfFactor(req.village);
    const auto work = static_cast<Tick>(
        static_cast<double>(req.remainingWork()) * scale);
    return static_cast<std::int64_t>(req.createdAt + sloBudget_) -
           static_cast<std::int64_t>(curTick()) -
           static_cast<std::int64_t>(work);
}

ReadyList::KeyFn
Machine::laxityKey() const
{
    return [this](const ServiceRequest &r) { return laxityOf(r); };
}

std::uint64_t
Machine::completedRequests() const
{
    std::uint64_t total = completed_;
    for (const std::uint64_t n : laneCompleted_)
        total += n;
    return total;
}

std::uint64_t
Machine::rejectedRequests() const
{
    std::uint64_t total = rejected_;
    for (const std::uint64_t n : laneRejected_)
        total += n;
    return total;
}

std::uint64_t
Machine::shedRequests() const
{
    std::uint64_t total = shedNoPath_;
    for (const std::uint64_t n : laneShed_)
        total += n;
    return total;
}

void
Machine::sendIcn(EndpointId src, EndpointId dst, std::uint32_t bytes,
                 MsgClass cls, Network::DeliverFn fn,
                 Network::DropFn drop)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.bytes = bytes;
    m.cls = cls;
    net_->send(m, std::move(fn), std::move(drop));
}

FaultState &
Machine::armFaults()
{
    if (!faults_) {
        faults_ = std::make_unique<FaultState>(*topo_);
        net_->setFaultState(faults_.get());
    }
    return *faults_;
}

void
Machine::setVillageUp(VillageId v, bool up)
{
    if (v >= villages_.size())
        fatal("setVillageUp: village %u out of range", v);
    serviceMap_.setVillageUp(v, up);
}

bool
Machine::degradedDispatch() const
{
    return (faults_ != nullptr && faults_->anyLinkDown()) ||
           serviceMap_.villagesDown() > 0;
}

VillageId
Machine::pickReachableVillage(ServiceId service, EndpointId from)
{
    const std::size_t n = serviceMap_.villagesOf(service).size();
    const bool check_path =
        faults_ != nullptr && faults_->anyLinkDown();
    for (std::size_t i = 0; i < n; ++i) {
        const VillageId v = serviceMap_.pickLive(service);
        if (v == invalidId)
            return invalidId;
        if (!check_path ||
            topo_->hasLivePath(from, villageEndpoint(v),
                               faults_.get()))
            return v;
    }
    return invalidId;
}

void
Machine::externalArrival(ServiceRequest *req)
{
    if (!serviceMap_.hasService(req->service()))
        fatal("machine '%s' hosts no instance of service %u",
              p_.name.c_str(), req->service());

    // Wire/egress time getting here plus top-NIC ingress is all
    // dispatch-path work.
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::NicDispatch, curTick()));
    Tick t = topNic_->ingress(curTick(), req->reqBytes);

    const EndpointId ext = topo_->externalEndpoint();
    VillageId v;
    if (degradedDispatch()) {
        // Degraded mode keeps the liveness-aware walk; probing
        // policies re-engage once the machine heals.
        v = pickReachableVillage(req->service(), ext);
        if (v == invalidId) {
            shedRequest(req, t);
            return;
        }
    } else {
        Tick probe_delay = 0;
        v = pickDispatch(req->service(), probe_delay);
        t += probe_delay;
    }
    eventq().schedule(t, evTagV(EvSrc::RpcNic, v),
                      [this, req, v, ext]() {
        UMANY_ATTRIB(AttribRegistry::active()->charge(
            *req, AttribComp::NicDispatch, curTick()));
        sendIcn(ext, villageEndpoint(v), req->reqBytes,
                MsgClass::Request,
                [this, req, v]() { villageIngress(req, v); });
    });
}

void
Machine::localCall(ServiceRequest *child, VillageId from_village)
{
    VillageId v;
    if (degradedDispatch()) {
        v = pickReachableVillage(child->service(),
                                 villageEndpoint(from_village));
        if (v == invalidId) {
            shedRequest(child, curTick());
            return;
        }
    } else {
        Tick probe_delay = 0;
        v = pickDispatch(child->service(), probe_delay);
        if (probe_delay > 0) {
            // Depth probes delay the child's dispatch; round-robin
            // keeps the zero-delay direct path below.
            eventq().schedule(curTick() + probe_delay,
                              evTagV(EvSrc::RpcNic, v),
                              [this, child, v, from_village]() {
                UMANY_ATTRIB(AttribRegistry::active()->charge(
                    *child, AttribComp::NicDispatch, curTick()));
                sendIcn(villageEndpoint(from_village),
                        villageEndpoint(v), child->reqBytes,
                        MsgClass::Request,
                        [this, child, v]() {
                    villageIngress(child, v);
                });
            });
            return;
        }
    }
    sendIcn(villageEndpoint(from_village), villageEndpoint(v),
            child->reqBytes, MsgClass::Request,
            [this, child, v]() { villageIngress(child, v); });
}

void
Machine::shedRequest(ServiceRequest *req, Tick ready_at)
{
    if (sharded_) {
        const std::uint32_t l = curLane();
        ++laneRejected_[l];
        ++laneShed_[l];
    } else {
        ++rejected_;
        ++shedNoPath_;
    }
    req->rejected = true;
    req->state = ReqState::Rejected;
    req->finishedAt = curTick();
    req->server = self_;
    UMANY_INVARIANT(InvariantChecker::active()->onReject(*req));
    UMANY_TRACE(TraceSink::active()->instant(
        curTick(), tracePid(), traceNicTrack, "nic.shed", req->id()));
    // The error response bounces straight from the NIC — the request
    // never crossed the ICN, so the response does not either.
    req->respBytes = 128;
    UMANY_ATTRIB(AttribRegistry::active()->notePlacement(*req));
    if (req->parent == nullptr) {
        const Tick t = ready_at + topNic_->extLatency();
        UMANY_ATTRIB(AttribRegistry::active()->charge(
            *req, AttribComp::NicDispatch, t));
        eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                          [this, req]() { onRootComplete(req); });
    } else if (req->parent->server == self_) {
        ServiceRequest *parent = req->parent;
        UMANY_ATTRIB(AttribRegistry::active()->charge(
            *req, AttribComp::NicDispatch, ready_at));
        eventq().schedule(ready_at,
                          evTagV(EvSrc::RpcNic, parent->village),
                          [this, parent, req]() {
            deliverChildResponse(parent, req);
        });
    } else {
        UMANY_ATTRIB(AttribRegistry::active()->charge(
            *req, AttribComp::NicDispatch, ready_at));
        eventq().schedule(ready_at, evTagExt(EvSrc::RpcNic),
                          [this, req]() {
            onRemoteChildFinished(req);
        });
    }
}

void
Machine::villageIngress(ServiceRequest *req, VillageId v)
{
    Village &vil = villages_[v];
    vil.nic->countRx();
    req->village = v;
    req->server = self_;
    UMANY_ATTRIB({
        AttribRegistry *ar = AttribRegistry::active();
        ar->chargeIcn(*req, net_->lastDelivery(), curTick());
        ar->notePlacement(*req);
    });
    req->pendingOverhead += vil.nic->rxCoreCycles();
    if (req->seq == 0)
        req->seq = nextSeqFor();
    Tick t = curTick() + vil.nic->rxLatency();
    // Software machines route every arriving request through the
    // centralized dispatcher before it can be queued (§4.4).
    if (p_.sched == MachineParams::Sched::SwQueue)
        t = dispatcher_->process(t);
    eventq().schedule(t, evTagV(EvSrc::SchedDispatch, v),
                      [this, req]() { enqueueFresh(req); });
}

void
Machine::enqueueFresh(ServiceRequest *req)
{
    // Village NIC rx + (software) dispatcher routing since ingress.
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::NicDispatch, curTick()));
    UMANY_TRACE(traceReqTransition(curTick(), *req,
                                   ReqState::Queued,
                                   tracePidBase_));
    req->state = ReqState::Queued;
    req->enqueuedAt = curTick();
    UMANY_INVARIANT(InvariantChecker::active()->onEnqueue(*req));
    const VillageId v = req->village;

    if (p_.sched == MachineParams::Sched::HwRq) {
        const RqAdmit res = villages_[v].rq->admit(req->seq, req);
        if (res == RqAdmit::Rejected) {
            rejectRequest(req);
            return;
        }
        if (res == RqAdmit::Admitted)
            tryWakeVillage(v);
        // Buffered requests are promoted on a later Complete.
        return;
    }

    const std::uint32_t q = p_.randomQueueAssignment
                                ? swq_->randomQueue()
                                : queueOfVillage(v);
    req->queueId = q;
    const Tick done = swq_->enqueue(q, req->seq, req, curTick());
    eventq().schedule(done, evTagV(EvSrc::SchedDispatch, v),
                      [this, q]() { tryWakeQueue(q); });
}

void
Machine::reEnqueue(ServiceRequest *req)
{
    // Dispatcher unblock op (software CS) between Ready and requeue.
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::CtxSwitch, curTick()));
    UMANY_TRACE(traceReqTransition(curTick(), *req,
                                   ReqState::Ready,
                                   tracePidBase_));
    req->state = ReqState::Ready;
    req->enqueuedAt = curTick();
    UMANY_INVARIANT(InvariantChecker::active()->onEnqueue(*req));
    const VillageId v = req->village;

    if (p_.sched == MachineParams::Sched::HwRq) {
        villages_[v].rq->makeReady(req->seq, req);
        tryWakeVillage(v);
        return;
    }
    const std::uint32_t q = req->queueId;
    const Tick done = swq_->enqueue(q, req->seq, req, curTick());
    eventq().schedule(done, evTagV(EvSrc::SchedDispatch, v),
                      [this, q]() { tryWakeQueue(q); });
}

void
Machine::tryWakeVillage(VillageId v)
{
    const CoreId core = villages_[v].rq->claimIdleCore();
    if (core == invalidId)
        return;
    corePickup(core);
}

void
Machine::tryWakeQueue(std::uint32_t q)
{
    const CoreId core = swq_->claimIdleCore(q);
    if (core == invalidId)
        return;
    corePickup(core);
}

void
Machine::corePickup(CoreId core, bool allow_steal)
{
    Tick done = curTick();
    ServiceRequest *req = nullptr;
    if (p_.sched == MachineParams::Sched::HwRq) {
        HwRq &rq = *villages_[villageOfCore(core)].rq;
        if (dkind_ == DispatchKind::Slo)
            req = rq.dequeueBy(curTick(), done, laxityKey());
        else
            req = rq.dequeue(curTick(), done);
        if (req == nullptr && allow_steal &&
            dkind_ == DispatchKind::Steal) {
            req = trySteal(core, done);
            if (req != nullptr) {
                startRun(core, req, done, /*stolen=*/true);
                return;
            }
            if (done > curTick()) {
                // Every probe failed, but each one still burned
                // stealCycles: the core stays busy until `done`,
                // then re-checks its home RQ once (no second steal
                // walk, so an empty machine quiesces).
                eventq().schedule(
                    done, evTagC(EvSrc::SchedDispatch, core),
                    [this, core]() { corePickup(core, false); });
                return;
            }
        }
    } else {
        req = swq_->dequeue(core, curTick(), done);
        if (req == nullptr && allow_steal && p_.workStealing &&
            done > curTick()) {
            // Failed steal probes serialized on victim locks until
            // `done`; the core is not idle for that window.
            eventq().schedule(
                done, evTagC(EvSrc::SchedDispatch, core),
                [this, core]() { corePickup(core, false); });
            return;
        }
    }
    if (req == nullptr) {
        markIdle(core);
        return;
    }
    startRun(core, req, done);
}

ServiceRequest *
Machine::trySteal(CoreId core, Tick &done)
{
    const VillageId home = villageOfCore(core);
    Village &hv = villages_[home];
    // No free entry to adopt the stolen request into: don't probe.
    if (hv.rq->full())
        return nullptr;
    const Cluster &cl = clusters_[clusterOfVillage(home)];
    const auto n = static_cast<std::uint32_t>(cl.villages.size());
    if (n <= 1)
        return nullptr;
    std::uint32_t &cursor = stealCursor_[home];
    const std::uint32_t attempts = std::min(
        p_.dispatch.stealAttempts, n - 1);
    for (std::uint32_t i = 0; i < attempts; ++i) {
        do {
            cursor = (cursor + 1) % n;
        } while (cl.villages[cursor] == home);
        const VillageId victim = cl.villages[cursor];
        done += cyc(static_cast<double>(p_.dispatch.stealCycles));
        ++stealProbes_;
        ServiceRequest *promoted = nullptr;
        ServiceRequest *req =
            villages_[victim].rq->stealYoungest(promoted);
        if (promoted != nullptr) {
            // The freed entry pulled a buffered request in; same
            // handling as the Complete-side promotion.
            promoted->enqueuedAt = curTick();
            promoted->state = ReqState::Queued;
            UMANY_ATTRIB(AttribRegistry::active()->charge(
                *promoted, AttribComp::NicDispatch, curTick()));
            tryWakeVillage(victim);
        }
        if (req != nullptr) {
            hv.rq->adoptStolen(req->service());
            req->village = home;
            ++steals_;
            UMANY_INVARIANT(
                InvariantChecker::active()->onSteal(*req));
            UMANY_TRACE(TraceSink::active()->instant(
                curTick(), tracePid(), traceCoreTrack(core),
                "rq.steal", req->id()));
            return req;
        }
    }
    return nullptr;
}

void
Machine::startRun(CoreId core, ServiceRequest *req, Tick ready_at,
                  bool stolen)
{
    // Policy accounting (serial-mode only: non-rr policies never
    // shard, so these counters see no concurrent writers).
    if (dkind_ != DispatchKind::RoundRobin && !stolen)
        ++directDispatches_;
    cores_[core].beginWork(req, curTick());
    req->queuedTime += curTick() - req->enqueuedAt;
    // The ledger's RQ-wait window is exactly the queuedTime interval;
    // dequeue/restore cost below is context-switch work.
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::RqWait, curTick()));
    UMANY_TRACE(traceReqTransition(curTick(), *req,
                                   ReqState::Running,
                                   tracePidBase_));
    req->state = ReqState::Running;
    UMANY_INVARIANT(InvariantChecker::active()->onDequeue(*req));

    Tick t = ready_at;
    // Context restore (Dequeue uploads state in hardware; software
    // schedulers run the restore path). Preempted requests carry
    // saved context even inside their first segment.
    if (req->segIndex > 0 || req->preemptions > 0) {
        t += p_.cs.restoreTime(p_.core.ghz);
        req->contextSwitches += 1;
        cores_[core].countSwitch();
        UMANY_TRACE(TraceSink::active()->instant(
            curTick(), tracePid(), traceCoreTrack(core),
            "cs.restore", req->id()));
    }
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::CtxSwitch, t));
    // Deferred software overhead (RPC rx processing, unblocks).
    if (req->pendingOverhead > 0) {
        t += cyc(static_cast<double>(req->pendingOverhead));
        req->pendingOverhead = 0;
    }
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::NicDispatch, t));


    // Migration warm-up: resuming on a different core outside the
    // previous L2 domain moves the warm set over the ICN.
    const CoreId last = req->lastCore;
    if (last != invalidId && last != core && !sameL2(last, core)) {
        const std::uint64_t bytes = coherence_.migrationBytes(false);
        if (bytes > 0) {
            const VillageId from = villageOfCore(last);
            const VillageId to = villageOfCore(core);
            eventq().schedule(t, evTagV(EvSrc::MemCoherence, to),
                              [this, core, req, from, to,
                               bytes]() {
                sendIcn(villageEndpoint(from), villageEndpoint(to),
                        static_cast<std::uint32_t>(bytes),
                        MsgClass::BulkData,
                        [this, core, req]() {
                            runSegment(core, req);
                        });
            });
            return;
        }
    }

    eventq().schedule(t, evTagC(EvSrc::CoreRun, core),
                      [this, core, req]() {
        runSegment(core, req);
    });
}

void
Machine::runSegment(CoreId core, ServiceRequest *req)
{
    // Migration warm-up arrivals reach here over the ICN; charge the
    // transfer before the segment starts. (Direct schedules arrive
    // with a zero-length window and charge nothing.)
    UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
        *req, net_->lastDelivery(), curTick()));
    // Slo runs the segment in slices so a more urgent arrival can
    // preempt at the next boundary; everything else executes the
    // whole (remaining) segment. segProgress is 0 outside Slo, so
    // the round-robin arithmetic below is untouched.
    const Tick seg_ref = req->behavior().segments[req->segIndex];
    Tick slice_ref = seg_ref > req->segProgress
                         ? seg_ref - req->segProgress
                         : 0;
    bool sliced = false;
    if (dkind_ == DispatchKind::Slo && sloSlice_ > 0 &&
        slice_ref > sloSlice_) {
        slice_ref = sloSlice_;
        sliced = true;
    }
    double work = static_cast<double>(slice_ref);
    work *= p_.perfFactor * villagePerfFactor(req->village);
    const Tick base = static_cast<Tick>(work);
    if (coherence_.scope() == CoherenceScope::Global)
        work *= 1.0 + p_.dirStallFactor;
    const Tick dur = static_cast<Tick>(work);
    req->runningTime += dur;
    // Split the window into reference execution and the directory
    // stall inflation on top of it.
    UMANY_ATTRIB({
        AttribRegistry *ar = AttribRegistry::active();
        ar->charge(*req, AttribComp::ServiceExec, curTick() + base);
        ar->charge(*req, AttribComp::CoherenceStall,
                   curTick() + dur);
    });
    // The on-core execution window, on the core's own track.
    UMANY_TRACE({
        TraceSink *s = TraceSink::active();
        s->durBegin(curTick(), tracePid(), traceCoreTrack(core),
                    "segment", req->id());
        s->durEnd(curTick() + dur, tracePid(), traceCoreTrack(core),
                  "segment", req->id());
    });

    // Memory-system traffic generated by this segment. Under global
    // coherence, misses indirect through directories spread across
    // the package (uniform-random destination); with village-scoped
    // coherence they are served by the cluster's local memory pool.
    if (p_.dirTrafficBytesPerNs > 0.0 && villages_.size() > 1) {
        const double ns = toNs(dur);
        const std::uint32_t bytes =
            static_cast<std::uint32_t>(std::min<double>(
                ns * p_.dirTrafficBytesPerNs, p_.dirTrafficMaxBytes));
        if (bytes >= 64) {
            EndpointId dst;
            if (coherence_.scope() == CoherenceScope::Global) {
                Rng &r = sharded_ ? laneRng_[curLane()] : rng_;
                VillageId dv = static_cast<VillageId>(
                    r.below(villages_.size()));
                dst = villageEndpoint(dv);
            } else {
                const Cluster &cl =
                    clusters_[clusterOfVillage(req->village)];
                dst = cl.poolEndpoint != invalidId
                          ? cl.poolEndpoint
                          : villageEndpoint(req->village);
            }
            if (dst != villageEndpoint(req->village)) {
                // Fire-and-forget: droppable on partition (no one
                // waits on coherence traffic).
                sendIcn(villageEndpoint(req->village), dst, bytes,
                        MsgClass::Coherence, []() {}, []() {});
            }
        }
    }

    eventq().scheduleAfter(dur, evTagC(EvSrc::CoreRun, core),
                           [this, core, req, sliced, slice_ref]() {
        if (sliced) {
            sliceDone(core, req, slice_ref);
        } else {
            req->segProgress = 0;
            segmentDone(core, req);
        }
    });
}

void
Machine::sliceDone(CoreId core, ServiceRequest *req, Tick slice_ref)
{
    req->segProgress += slice_ref;
    req->lastCore = core;
    // Least-laxity preemption: yield only to a strictly more urgent
    // ready entry, so two equal requests never ping-pong.
    std::int64_t best = 0;
    const HwRq &rq = *villages_[req->village].rq;
    if (!rq.minReadyKey(laxityKey(), best) ||
        best >= laxityOf(*req)) {
        runSegment(core, req);
        return;
    }

    ++preempts_;
    req->preemptions += 1;
    req->contextSwitches += 1;
    cores_[core].countSwitch();
    UMANY_TRACE({
        traceReqTransition(curTick(), *req, ReqState::Ready,
                           tracePidBase_);
        TraceSink::active()->instant(curTick(), tracePid(),
                                     traceCoreTrack(core),
                                     "cs.preempt", req->id());
    });
    const Tick t = curTick() + p_.cs.saveTime(p_.core.ghz);
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::CtxSwitch, t));
    req->state = ReqState::Ready;
    req->enqueuedAt = t;
    UMANY_INVARIANT(InvariantChecker::active()->onPreempt(*req));
    eventq().schedule(t, evTagV(EvSrc::CtxSwitch, req->village),
                      [this, core, req]() {
        villages_[req->village].rq->makeReady(req->seq, req);
        releaseCore(core);
    });
}

void
Machine::segmentDone(CoreId core, ServiceRequest *req)
{
    req->lastCore = core;
    const VillageId v = req->village;

    if (req->lastSegment()) {
        // Send the response and execute Complete.
        Tick t = curTick() + villages_[v].nic->txCoreTime();
        if (p_.sched == MachineParams::Sched::HwRq)
            t += cyc(static_cast<double>(p_.rq.completeCycles));
        UMANY_ATTRIB(AttribRegistry::active()->charge(
            *req, AttribComp::NicDispatch, t));
        eventq().schedule(t, evTagV(EvSrc::ReqComplete, v),
                          [this, core, req, v]() {
            finishRequest(req, v);
            releaseCore(core);
        });
        return;
    }

    // Block on the next call group.
    const CallGroup &group = req->behavior().groups[req->segIndex];
    UMANY_TRACE({
        traceReqTransition(curTick(), *req, ReqState::Blocked,
                           tracePidBase_);
        TraceSink::active()->instant(curTick(), tracePid(),
                                     traceCoreTrack(core),
                                     "cs.save", req->id());
    });
    req->state = ReqState::Blocked;
    req->pendingChildren = static_cast<std::uint32_t>(group.size());
    UMANY_INVARIANT(InvariantChecker::active()->onBlock(*req));
    req->blockedGroup = req->segIndex;
    req->segIndex += 1;
    req->contextSwitches += 1;
    cores_[core].countSwitch();

    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::CtxSwitch,
        curTick() + p_.cs.saveTime(p_.core.ghz)));
    Tick t = curTick() + p_.cs.saveTime(p_.core.ghz) +
             villages_[v].nic->txCoreTime() *
                 static_cast<Tick>(group.size());
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *req, AttribComp::NicDispatch, t));
    // Software context switching routes through the centralized
    // scheduler core (§4.4); the worker waits for its ack, so the
    // dispatcher saturates under frequent blocking.
    if (p_.cs.scheme != CsScheme::HardwareRq) {
        t = dispatcher_->process(
            t, p_.dispatcher.opCycles + p_.cs.saveCycles);
        UMANY_ATTRIB(AttribRegistry::active()->charge(
            *req, AttribComp::CtxSwitch, t));
    }
    eventq().schedule(t, evTagV(EvSrc::CtxSwitch, v),
                      [this, core, req, v]() {
        issueCallGroup(req, v);
        releaseCore(core);
    });
}

void
Machine::issueCallGroup(ServiceRequest *req, VillageId v)
{
    const CallGroup &group =
        req->behavior().groups[req->blockedGroup];
    const Tick blocked_from = curTick();
    req->enqueuedAt = blocked_from; // reused for blocked accounting
    for (const CallStep &call : group) {
        villages_[v].nic->countTx();
        if (call.kind == CallStep::Kind::Storage) {
            // Request leaves via the village R-port, the ICN, and
            // the package top-level NIC. The step is captured by
            // value: the loop variable dies before delivery.
            const CallStep step = call;
            sendIcn(villageEndpoint(v), topo_->externalEndpoint(),
                    step.requestBytes, MsgClass::Request,
                    [this, req, step]() {
                        Tick t = topNic_->egress(curTick(),
                                                 step.requestBytes);
                        t += rnic_->sendPenalty();
                        t += topNic_->extLatency();
                        eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                                          [this, req, step]() {
                            onStorageCall(req, step);
                        });
                    });
        } else {
            onServiceCall(req, call);
        }
    }
}

void
Machine::finishRequest(ServiceRequest *req, VillageId v)
{
    UMANY_TRACE(traceReqTransition(curTick(), *req,
                                   ReqState::Finished,
                                   tracePidBase_));
    req->state = ReqState::Finished;
    req->finishedAt = curTick();
    UMANY_INVARIANT(InvariantChecker::active()->onComplete(*req));
    if (sharded_)
        ++laneCompleted_[curLane()];
    else
        ++completed_;
    villages_[v].nic->countTx();

    if (p_.sched == MachineParams::Sched::HwRq) {
        ServiceRequest *promoted =
            villages_[v].rq->complete(req->service());
        if (promoted != nullptr) {
            promoted->enqueuedAt = curTick();
            promoted->state = ReqState::Queued;
            // Time spent parked in the NIC buffer is dispatch-path
            // backpressure, not RQ wait: the RQ clock starts now.
            UMANY_ATTRIB(AttribRegistry::active()->charge(
                *promoted, AttribComp::NicDispatch, curTick()));
            tryWakeVillage(v);
        }
    }

    if (req->parent == nullptr) {
        // Root: response to the external client.
        sendIcn(villageEndpoint(v), topo_->externalEndpoint(),
                req->respBytes, MsgClass::Response, [this, req]() {
                    UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
                        *req, net_->lastDelivery(), curTick()));
                    Tick t =
                        topNic_->egress(curTick(), req->respBytes);
                    t += rnic_->sendPenalty() + topNic_->extLatency();
                    UMANY_ATTRIB(AttribRegistry::active()->charge(
                        *req, AttribComp::NicDispatch, t));
                    eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                                      [this, req]() {
                        onRootComplete(req);
                    });
                });
    } else if (req->parent->server == self_) {
        // Local parent: response over the ICN.
        ServiceRequest *parent = req->parent;
        sendIcn(villageEndpoint(v), villageEndpoint(parent->village),
                req->respBytes, MsgClass::Response,
                [this, parent, req]() {
                    deliverChildResponse(parent, req);
                });
    } else {
        // Remote parent: response leaves the package.
        sendIcn(villageEndpoint(v), topo_->externalEndpoint(),
                req->respBytes, MsgClass::Response, [this, req]() {
                    UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
                        *req, net_->lastDelivery(), curTick()));
                    Tick t =
                        topNic_->egress(curTick(), req->respBytes);
                    t += rnic_->sendPenalty();
                    UMANY_ATTRIB(AttribRegistry::active()->charge(
                        *req, AttribComp::NicDispatch, t));
                    eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                                      [this, req]() {
                        onRemoteChildFinished(req);
                    });
                });
    }
}

void
Machine::deliverChildResponse(ServiceRequest *parent,
                              ServiceRequest *child)
{
    // Close the child's ledger at response delivery: the transfer
    // back over the ICN is its final charge. (For shed children the
    // window is empty and this is a no-op.)
    UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
        *child, net_->lastDelivery(), curTick()));
    Village &vil = villages_[parent->village];
    vil.nic->countRx();
    parent->pendingOverhead += vil.nic->rxCoreCycles();
    const Tick t = curTick() + vil.nic->rxLatency();

    if (onChildConsumed)
        onChildConsumed(child);

    if (parent->pendingChildren == 0)
        panic("response for a parent with no pending children");
    parent->pendingChildren -= 1;
    if (parent->pendingChildren == 0) {
        eventq().schedule(
            t, evTagV(EvSrc::ReqComplete, parent->village),
            [this, parent]() { responseProcessed(parent); });
    }
}

void
Machine::externalResponse(ServiceRequest *parent, std::uint32_t bytes)
{
    const Tick t0 = topNic_->ingress(curTick(), bytes);
    rnic_->onAck();
    eventq().schedule(t0, evTagV(EvSrc::RpcNic, parent->village),
                      [this, parent, bytes]() {
        sendIcn(topo_->externalEndpoint(),
                villageEndpoint(parent->village), bytes,
                MsgClass::Response, [this, parent]() {
                    Village &vil = villages_[parent->village];
                    vil.nic->countRx();
                    parent->pendingOverhead += vil.nic->rxCoreCycles();
                    const Tick t =
                        curTick() + vil.nic->rxLatency();
                    if (parent->pendingChildren == 0)
                        panic("external response without pending "
                              "children");
                    parent->pendingChildren -= 1;
                    if (parent->pendingChildren == 0) {
                        eventq().schedule(
                            t,
                            evTagV(EvSrc::ReqComplete,
                                   parent->village),
                            [this, parent]() {
                                responseProcessed(parent);
                            });
                    }
                });
    });
}

void
Machine::outboundRequest(ServiceRequest *req, VillageId from,
                         std::function<void()> on_exit)
{
    // The R-NIC counters belong to the shared (external) lane; when
    // sharded, bump them at package egress — the delivery callback
    // below runs in that lane — not here in the village's lane.
    if (!sharded_)
        rnic_->onSend();
    sendIcn(villageEndpoint(from), topo_->externalEndpoint(),
            req->reqBytes, MsgClass::Request,
            [this, req, on_exit = std::move(on_exit)]() {
                if (sharded_)
                    rnic_->onSend();
                UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
                    *req, net_->lastDelivery(), curTick()));
                Tick t = topNic_->egress(curTick(), req->reqBytes);
                t += rnic_->sendPenalty();
                UMANY_ATTRIB(AttribRegistry::active()->charge(
                    *req, AttribComp::NicDispatch, t));
                eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                                  on_exit);
            });
}

void
Machine::responseProcessed(ServiceRequest *parent)
{
    parent->blockedTime += curTick() - parent->enqueuedAt;
    // Exactly the blockedTime interval: the call group was issued at
    // enqueuedAt, which is also where the ledger checkpoint stopped.
    UMANY_ATTRIB(AttribRegistry::active()->charge(
        *parent, AttribComp::BlockedOnChild, curTick()));
    // Unblocking under software context switching is another
    // serialized dispatcher operation (restore-side bookkeeping).
    if (p_.cs.scheme != CsScheme::HardwareRq) {
        const Tick t = dispatcher_->process(
            curTick(), p_.dispatcher.opCycles + p_.cs.restoreCycles);
        eventq().schedule(t,
                          evTagV(EvSrc::CtxSwitch, parent->village),
                          [this, parent]() { reEnqueue(parent); });
        return;
    }
    reEnqueue(parent);
}

void
Machine::rejectRequest(ServiceRequest *req)
{
    if (sharded_)
        ++laneRejected_[curLane()];
    else
        ++rejected_;
    req->rejected = true;
    UMANY_TRACE(traceReqTransition(curTick(), *req,
                                   ReqState::Rejected,
                                   tracePidBase_));
    req->state = ReqState::Rejected;
    req->finishedAt = curTick();
    UMANY_INVARIANT(InvariantChecker::active()->onReject(*req));
    // An error response still flows back so callers never hang; it
    // is small and cheap.
    req->respBytes = 128;
    const VillageId v = req->village;
    if (req->parent == nullptr) {
        sendIcn(villageEndpoint(v), topo_->externalEndpoint(), 128,
                MsgClass::Response, [this, req]() {
                    UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
                        *req, net_->lastDelivery(), curTick()));
                    const Tick t =
                        topNic_->egress(curTick(), 128) +
                        topNic_->extLatency();
                    UMANY_ATTRIB(AttribRegistry::active()->charge(
                        *req, AttribComp::NicDispatch, t));
                    eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                                      [this, req]() {
                        onRootComplete(req);
                    });
                });
    } else if (req->parent->server == self_) {
        ServiceRequest *parent = req->parent;
        sendIcn(villageEndpoint(v), villageEndpoint(parent->village),
                128, MsgClass::Response, [this, parent, req]() {
                    deliverChildResponse(parent, req);
                });
    } else {
        sendIcn(villageEndpoint(v), topo_->externalEndpoint(), 128,
                MsgClass::Response, [this, req]() {
                    UMANY_ATTRIB(AttribRegistry::active()->chargeIcn(
                        *req, net_->lastDelivery(), curTick()));
                    const Tick t = topNic_->egress(curTick(), 128);
                    UMANY_ATTRIB(AttribRegistry::active()->charge(
                        *req, AttribComp::NicDispatch, t));
                    eventq().schedule(t, evTagExt(EvSrc::RpcNic),
                                      [this, req]() {
                        onRemoteChildFinished(req);
                    });
                });
    }
}

void
Machine::releaseCore(CoreId core)
{
    cores_[core].endWork(curTick());
    corePickup(core);
}

void
Machine::markIdle(CoreId core)
{
    if (p_.sched == MachineParams::Sched::HwRq)
        villages_[villageOfCore(core)].rq->coreIdle(core);
    else
        swq_->coreIdle(core);
}

double
Machine::dispatcherUtilization() const
{
    return dispatcher_ ? dispatcher_->utilization(curTick()) : 0.0;
}

std::uint64_t
Machine::dispatcherOps() const
{
    return dispatcher_ ? dispatcher_->ops() : 0;
}

std::uint64_t
Machine::contextSwitches() const
{
    std::uint64_t total = 0;
    for (const Core &c : cores_)
        total += c.switches();
    return total;
}

void
Machine::auditInvariants(InvariantChecker &ic, bool final) const
{
    const Tick now = curTick();

    if (p_.sched == MachineParams::Sched::HwRq) {
        for (std::size_t v = 0; v < villages_.size(); ++v) {
            const HwRq &rq = *villages_[v].rq;
            ic.expect(rq.readyCount() <= rq.inFlight(),
                      "%s village %zu: %zu ready entries exceed %u "
                      "in flight",
                      name().c_str(), v, rq.readyCount(),
                      rq.inFlight());
            ic.expect(rq.inFlight() <= rq.params().entries,
                      "%s village %zu: RQ occupancy %u exceeds %u "
                      "entries",
                      name().c_str(), v, rq.inFlight(),
                      rq.params().entries);
            // With work stealing, entries admitted here can finish
            // elsewhere (stealsOut) and vice versa (stealsIn);
            // without it both terms are zero and this reduces to
            // the classic admitted == completes + inFlight.
            ic.expect(rq.admitted() + rq.stealsIn() ==
                          rq.completes() + rq.stealsOut() +
                              rq.inFlight(),
                      "%s village %zu: admission arithmetic broken "
                      "(%llu admitted + %llu stolen in != %llu "
                      "completes + %llu stolen out + %u in flight)",
                      name().c_str(), v,
                      static_cast<unsigned long long>(rq.admitted()),
                      static_cast<unsigned long long>(rq.stealsIn()),
                      static_cast<unsigned long long>(rq.completes()),
                      static_cast<unsigned long long>(
                          rq.stealsOut()),
                      rq.inFlight());
            ic.expect(rq.bufferedCount() <=
                          rq.params().nicBufferEntries,
                      "%s village %zu: NIC buffer overfull (%zu)",
                      name().c_str(), v, rq.bufferedCount());
            for (const CoreId c : rq.idleCores()) {
                ic.expect(!cores_[c].busy(),
                          "%s: idle-registered core %u has Work set",
                          name().c_str(), c);
            }
        }
    } else {
        std::size_t per_queue = 0;
        for (std::uint32_t q = 0; q < swq_->params().numQueues; ++q)
            per_queue += swq_->queueLength(q);
        ic.expect(per_queue == swq_->totalReady(),
                  "%s: per-queue lengths sum to %zu but %zu total "
                  "ready",
                  name().c_str(), per_queue, swq_->totalReady());
        for (CoreId c = 0; c < p_.numCores; ++c) {
            if (swq_->idleRegistered(c)) {
                ic.expect(!cores_[c].busy(),
                          "%s: idle-registered core %u has Work set",
                          name().c_str(), c);
            }
        }
    }

    if (dispatcher_) {
        ic.expect(dispatcher_->busyTime() <= dispatcher_->freeAt(),
                  "%s: dispatcher busy time %llu exceeds its "
                  "serialization frontier %llu",
                  name().c_str(),
                  static_cast<unsigned long long>(
                      dispatcher_->busyTime()),
                  static_cast<unsigned long long>(
                      dispatcher_->freeAt()));
    }

    // Link occupancy can run ahead of the clock only up to the
    // reserved busy-until frontier; at quiescence this degenerates
    // to utilization <= 1.0.
    const auto &links = topo_->links();
    const auto &states = net_->linkStates();
    for (std::size_t i = 0; i < states.size(); ++i) {
        const Tick cap = std::max(now, states[i].busyUntil);
        ic.expect(states[i].busyTime <= cap,
                  "%s link %s: occupancy %llu exceeds bound %llu "
                  "(utilization > 1.0)",
                  name().c_str(), links[i].label.c_str(),
                  static_cast<unsigned long long>(
                      states[i].busyTime),
                  static_cast<unsigned long long>(cap));
    }
    ic.expect(net_->messagesDelivered() + net_->messagesDropped() <=
                  net_->messagesSent(),
              "%s: resolved %llu messages but sent only %llu",
              name().c_str(),
              static_cast<unsigned long long>(
                  net_->messagesDelivered() +
                  net_->messagesDropped()),
              static_cast<unsigned long long>(net_->messagesSent()));

    if (final) {
        ic.expect(net_->messagesSent() ==
                      net_->messagesDelivered() +
                          net_->messagesDropped(),
                  "%s: %llu flights never delivered",
                  name().c_str(),
                  static_cast<unsigned long long>(
                      net_->messagesSent() -
                      net_->messagesDelivered() -
                      net_->messagesDropped()));
        for (CoreId c = 0; c < p_.numCores; ++c) {
            ic.expect(!cores_[c].busy(),
                      "%s: core %u still busy after drain",
                      name().c_str(), c);
        }
    }
}

double
Machine::avgCoreUtilization() const
{
    if (cores_.empty() || curTick() == 0)
        return 0.0;
    double total = 0.0;
    for (const Core &c : cores_)
        total += c.utilization(curTick());
    return total / static_cast<double>(cores_.size());
}

} // namespace umany
