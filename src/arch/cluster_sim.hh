/**
 * @file
 * ClusterSim: the N-server deployment the evaluation models (§5) —
 * servers with identical machines, a 1 μs / 200 GB/s inter-server
 * fabric, service-instance placement across villages and servers,
 * request routing (local-vs-remote downstream calls), and
 * end-to-end latency recording.
 */

#ifndef UMANY_ARCH_CLUSTER_SIM_HH
#define UMANY_ARCH_CLUSTER_SIM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/server.hh"
#include "rpc/inter_server.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "workload/service.hh"

namespace umany
{

/** Cluster-level configuration. */
struct ClusterSimParams
{
    std::uint32_t numServers = 10;
    /** Probability a downstream call stays on the caller's server
     *  when an instance exists there. */
    double localCallBias = 0.7;
    StorageParams storage;
    InterServerParams interServer; //!< numServers is overridden.
    std::uint64_t seed = 0x5ca1ab1eull;
};

/** The simulated server cluster. */
class ClusterSim
{
  public:
    ClusterSim(EventQueue &eq, const ServiceCatalog &catalog,
               const MachineParams &machine,
               const ClusterSimParams &p);
    ~ClusterSim();

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    /**
     * Submit one root request for @p endpoint (round-robin across
     * servers), as the load generator's client would.
     */
    void submitRoot(ServiceId endpoint);

    /** Enable/disable latency recording (off during warmup). */
    void setRecording(bool on) { recording_ = on; }

    /** Optional per-endpoint QoS thresholds (§6.5). */
    void setQosThreshold(ServiceId endpoint, Tick threshold);

    /** @name Metrics @{ */
    const Histogram &endpointLatency(ServiceId endpoint) const;
    const Histogram &allLatency() const { return allLatency_; }
    /** @name Per-service-request time breakdown (§3.3). @{ */
    const Summary &queuedTimeUs() const { return queuedUs_; }
    const Summary &blockedTimeUs() const { return blockedUs_; }
    const Summary &runningTimeUs() const { return runningUs_; }
    /** running / (running+blocked+queued) per handler execution. */
    const Summary &requestCpuUtilization() const { return reqUtil_; }
    /** @} */
    std::uint64_t completedRoots() const { return completedRoots_; }
    std::uint64_t rejectedRoots() const { return rejectedRoots_; }
    std::uint64_t qosViolations() const { return qosViolations_; }
    std::uint64_t observedRoots() const { return observedRoots_; }
    std::uint64_t requestsInFlight() const
    {
        return requests_.size();
    }
    /** @} */

    std::uint32_t numServers() const
    {
        return static_cast<std::uint32_t>(servers_.size());
    }
    Machine &machine(ServerId s) { return servers_[s]->machine(); }
    Server &server(ServerId s) { return *servers_[s]; }
    const ServiceCatalog &catalog() const { return catalog_; }
    /** The event queue driving this simulation. */
    const EventQueue &eventq() const { return eq_; }

  private:
    EventQueue &eq_;
    const ServiceCatalog &catalog_;
    ClusterSimParams p_;
    /** Per-component streams (see streamSeed()): service-time
     *  behavior draws vs child-call placement. */
    Rng behaviorRng_;
    Rng placeRng_;

    std::vector<std::unique_ptr<Server>> servers_;
    std::unique_ptr<InterServerNet> interServer_;

    std::unordered_map<RequestId,
                       std::unique_ptr<ServiceRequest>> requests_;
    RequestId nextId_ = 1;
    std::uint32_t rrServer_ = 0;

    bool recording_ = true;
    std::vector<Histogram> perEndpoint_; //!< Indexed by ServiceId.
    Histogram allLatency_;
    Summary queuedUs_;
    Summary blockedUs_;
    Summary runningUs_;
    Summary reqUtil_;
    std::vector<Tick> qosThreshold_;     //!< 0 == unset.
    std::uint64_t completedRoots_ = 0;
    std::uint64_t rejectedRoots_ = 0;
    std::uint64_t qosViolations_ = 0;
    std::uint64_t observedRoots_ = 0;

    void placeInstances();
    void wireServer(ServerId s);
    ServiceRequest *makeRequest(ServiceId service,
                                ServiceRequest *parent);
    void destroy(ServiceRequest *req);

    void handleRootComplete(ServerId s, ServiceRequest *req);
    void handleStorageCall(ServerId s, ServiceRequest *parent,
                           const CallStep &step);
    void handleServiceCall(ServerId s, ServiceRequest *parent,
                           const CallStep &step);
    void handleRemoteChildFinished(ServerId s, ServiceRequest *child);
};

} // namespace umany

#endif // UMANY_ARCH_CLUSTER_SIM_HH
