/**
 * @file
 * ClusterSim: the N-server deployment the evaluation models (§5) —
 * servers with identical machines, a 1 μs / 200 GB/s inter-server
 * fabric, service-instance placement across villages and servers,
 * request routing (local-vs-remote downstream calls), and
 * end-to-end latency recording.
 */

#ifndef UMANY_ARCH_CLUSTER_SIM_HH
#define UMANY_ARCH_CLUSTER_SIM_HH

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arch/server.hh"
#include "rpc/inter_server.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "workload/service.hh"

namespace umany
{

/**
 * Client-side recovery policy at the load-generator boundary:
 * each root request is a task that is retried with exponential
 * backoff when an attempt times out (or comes back rejected),
 * up to a retry budget. Off by default — the legacy submit path
 * is taken unchanged when disabled.
 */
struct RecoveryParams
{
    bool enabled = false;
    /** Client-observed deadline for one attempt. */
    Tick timeout = fromMs(5.0);
    /** Retries beyond the first attempt (maxRetries + 1 total). */
    std::uint32_t maxRetries = 3;
    Tick backoffBase = fromUs(500.0);
    double backoffFactor = 2.0;
    Tick backoffCap = fromMs(8.0);
    /** Also retry attempts the server explicitly rejected/shed. */
    bool retryRejects = true;

    /** Deterministic delay before attempt @p attempt + 1. */
    Tick backoffDelay(std::uint32_t attempt) const;
};

/** Cluster-level configuration. */
struct ClusterSimParams
{
    std::uint32_t numServers = 10;
    /** Probability a downstream call stays on the caller's server
     *  when an instance exists there. */
    double localCallBias = 0.7;
    StorageParams storage;
    InterServerParams interServer; //!< numServers is overridden.
    RecoveryParams recovery;
    std::uint64_t seed = 0x5ca1ab1eull;
    /**
     * Offset added to every locally-assigned request id. RackSim
     * gives each package a disjoint range so attribution records
     * (keyed by request id in one shared registry) never collide
     * across packages. 0 (the default) keeps the historical ids.
     */
    RequestId idBase = 0;
    /**
     * Offset added to every trace pid this cluster emits. RackSim
     * gives package N the pid block [N*numServers, (N+1)*numServers)
     * so one merged Chrome trace keeps per-package server processes
     * distinct. 0 (the default) keeps the historical flat pids.
     */
    std::uint32_t tracePidBase = 0;
};

/** The simulated server cluster. */
class ClusterSim
{
  public:
    ClusterSim(EventQueue &eq, const ServiceCatalog &catalog,
               const MachineParams &machine,
               const ClusterSimParams &p);
    ~ClusterSim();

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    /**
     * Submit one root request for @p endpoint (round-robin across
     * servers), as the load generator's client would.
     */
    void submitRoot(ServiceId endpoint);

    /** @name Rack integration (src/rack). @{ */
    /**
     * What the rack layer reports back when a root it routed
     * resolves: the client-observed latency (package latency plus
     * both inter-package hops), the hop ticks alone, and the tick
     * the root arrived at the load balancer.
     */
    struct RackRootInfo
    {
        Tick latency = 0;
        Tick hopTicks = 0;
        Tick clientStart = 0;
    };
    /**
     * Called exactly once per rack-routed root when it resolves
     * (completion, rejection, or recovery give-up — @p req is null
     * for a give-up). The package then records @p latency — not its
     * local view — into its histograms and ledger, so merging
     * package histograms yields client-observed rack latencies.
     */
    using RackRootFn = std::function<RackRootInfo(
        ServiceRequest *req, std::uint64_t ctx, Tick pkg_latency,
        bool completed)>;
    RackRootFn onRackRootDone;
    /**
     * Rack-routed submit: like submitRoot(), with an opaque rack
     * context (nonzero) passed back through onRackRootDone when the
     * root resolves. Serial mode only (the rack layer is not
     * sharded).
     */
    void submitRoot(ServiceId endpoint, std::uint64_t rack_ctx);
    /** @} */

    /** Enable/disable latency recording (off during warmup). */
    void setRecording(bool on) { recording_ = on; }

    /**
     * Enable parallel-DES sharding (sim/shard.hh): per-lane RNG
     * streams, request-id ranges, request stores, and breakdown
     * Summaries replace the shared ones, and every machine switches
     * to owner-lane NoC processing. Recording is decided by tick
     * (>= @p record_from) instead of the serial recording_ flag,
     * since lanes observe the warmup flip at different local times.
     * Must be called before any request is submitted.
     */
    void enableSharding(std::uint32_t lanes, Tick record_from);
    bool sharded() const { return sharded_; }

    /** Optional per-endpoint QoS thresholds (§6.5). */
    void setQosThreshold(ServiceId endpoint, Tick threshold);

    /** @name Metrics @{ */
    const Histogram &endpointLatency(ServiceId endpoint) const;
    const Histogram &allLatency() const { return allLatency_; }
    /** @name Per-service-request time breakdown (§3.3). @{ */
    const Summary &queuedTimeUs() const;
    const Summary &blockedTimeUs() const;
    const Summary &runningTimeUs() const;
    /** running / (running+blocked+queued) per handler execution. */
    const Summary &requestCpuUtilization() const;
    /** @} */
    std::uint64_t completedRoots() const { return completedRoots_; }
    std::uint64_t rejectedRoots() const { return rejectedRoots_; }
    std::uint64_t qosViolations() const { return qosViolations_; }
    std::uint64_t observedRoots() const { return observedRoots_; }
    /** @name Recovery counters (all zero when recovery is off). @{ */
    bool recoveryEnabled() const { return p_.recovery.enabled; }
    std::uint64_t retries() const { return retries_; }
    std::uint64_t timeouts() const { return timeouts_; }
    /** Roots abandoned after exhausting the retry budget. */
    std::uint64_t shedRoots() const { return shedRoots_; }
    /** Responses that arrived after their attempt timed out. */
    std::uint64_t staleResponses() const { return staleResponses_; }
    /** @} */
    std::uint64_t requestsInFlight() const;
    /** @} */

    std::uint32_t numServers() const
    {
        return static_cast<std::uint32_t>(servers_.size());
    }
    Machine &machine(ServerId s) { return servers_[s]->machine(); }
    Server &server(ServerId s) { return *servers_[s]; }
    const ServiceCatalog &catalog() const { return catalog_; }
    /** The event queue driving this simulation. */
    const EventQueue &eventq() const { return eq_; }

  private:
    EventQueue &eq_;
    const ServiceCatalog &catalog_;
    ClusterSimParams p_;
    /** Per-component streams (see streamSeed()): service-time
     *  behavior draws vs child-call placement. */
    Rng behaviorRng_;
    Rng placeRng_;

    std::vector<std::unique_ptr<Server>> servers_;
    std::unique_ptr<InterServerNet> interServer_;

    std::unordered_map<RequestId,
                       std::unique_ptr<ServiceRequest>> requests_;
    RequestId nextId_ = 1;
    std::uint32_t rrServer_ = 0;

    /**
     * One root request as the client sees it: a sequence of attempts
     * (each a distinct ServiceRequest) until a response arrives in
     * time or the retry budget runs out. The event queue has no
     * cancel primitive, so every scheduled timeout carries the
     * attempt generation and no-ops when it is no longer current.
     */
    struct RootTask
    {
        ServiceId endpoint = 0;
        Tick firstSubmit = 0;
        std::uint32_t attempt = 0;    //!< Attempts launched so far.
        std::uint64_t generation = 0; //!< Bumped per launch/resolve.
        RequestId inFlight = 0;       //!< 0 while backing off.
        ServerId lastTarget = 0;
        std::uint64_t rackCtx = 0;    //!< Rack routing context (0 = none).
    };
    std::unordered_map<std::uint64_t, RootTask> tasks_;
    std::unordered_map<RequestId, std::uint64_t> reqTask_;
    /** Rack context of non-recovery roots (empty off the rack). */
    std::unordered_map<RequestId, std::uint64_t> rackCtx_;
    std::uint64_t nextTask_ = 1;
    /** Lifecycle-conservation pair audited at finalCheck(). */
    std::uint64_t attemptsLaunched_ = 0;
    std::uint64_t attemptsResolved_ = 0;

    bool recording_ = true;
    std::vector<Histogram> perEndpoint_; //!< Indexed by ServiceId.
    Histogram allLatency_;
    Summary queuedUs_;
    Summary blockedUs_;
    Summary runningUs_;
    Summary reqUtil_;
    std::vector<Tick> qosThreshold_;     //!< 0 == unset.
    std::uint64_t completedRoots_ = 0;
    std::uint64_t rejectedRoots_ = 0;
    std::uint64_t qosViolations_ = 0;
    std::uint64_t observedRoots_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t shedRoots_ = 0;
    std::uint64_t staleResponses_ = 0;

    /** @name Parallel-DES mode @{ */
    bool sharded_ = false;
    Tick recordFrom_ = 0;
    std::uint16_t extPart_ = evPartNone; //!< Shared-lane partition.
    /**
     * Per-lane request store. Requests are created in the lane that
     * runs the creating event and destroyed in the lane that
     * delivers the response — usually a different one — so each
     * store takes a (mostly uncontended) mutex; the owning lane is
     * recoverable from the id's upper bits.
     */
    struct LaneReqStore
    {
        std::mutex mu;
        std::unordered_map<RequestId,
                           std::unique_ptr<ServiceRequest>> reqs;
    };
    std::vector<std::unique_ptr<LaneReqStore>> laneStores_;
    std::vector<std::uint64_t> laneNextId_;
    std::vector<Rng> laneBehaviorRng_;
    std::vector<Rng> lanePlaceRng_;
    /** Per-lane §3.3 breakdown Summaries, merged on read. */
    struct LaneBreakdown
    {
        Summary queuedUs;
        Summary blockedUs;
        Summary runningUs;
        Summary reqUtil;
    };
    std::vector<std::unique_ptr<LaneBreakdown>> laneBreakdown_;
    mutable Summary mergedQueuedUs_;
    mutable Summary mergedBlockedUs_;
    mutable Summary mergedRunningUs_;
    mutable Summary mergedReqUtil_;

    std::uint32_t curLane() const;
    /** Whether a completion at @p now lands in the stats window. */
    bool recordingAt(Tick now) const
    {
        return sharded_ ? now >= recordFrom_ : recording_;
    }
    EvTag evTagExt(EvSrc s) const { return EvTag{s, extPart_}; }
    /** @} */

    void placeInstances();
    void wireServer(ServerId s);
    ServiceRequest *makeRequest(ServiceId service,
                                ServiceRequest *parent);
    void destroy(ServiceRequest *req);

    void handleRootComplete(ServerId s, ServiceRequest *req);
    /** @name Recovery machinery (recovery.enabled only) @{ */
    void launchAttempt(std::uint64_t task_id);
    void onAttemptTimeout(std::uint64_t task_id, std::uint64_t gen);
    void scheduleRetry(std::uint64_t task_id);
    void recoveredRootComplete(ServiceRequest *req);
    /** @} */
    void handleStorageCall(ServerId s, ServiceRequest *parent,
                           const CallStep &step);
    void handleServiceCall(ServerId s, ServiceRequest *parent,
                           const CallStep &step);
    void handleRemoteChildFinished(ServerId s, ServiceRequest *child);
};

} // namespace umany

#endif // UMANY_ARCH_CLUSTER_SIM_HH
