#include "arch/presets.hh"

#include "cpu/perf_model.hh"
#include "sim/logging.hh"

namespace umany
{

MachineParams
uManycoreParams()
{
    MachineParams p;
    p.name = "uManycore";
    p.numCores = 1024;
    p.coresPerVillage = 8;
    p.villagesPerCluster = 4;
    p.hasMemoryPool = true;
    p.core = manycoreCoreParams();
    p.perfFactor = 1.0;
    p.topo = MachineParams::Topo::LeafSpine;
    p.sched = MachineParams::Sched::HwRq;
    p.cs = contextSwitchModel(CsScheme::HardwareRq);
    p.nic.hardwareRpc = true;
    p.coherence.scope = CoherenceScope::Village;
    p.dirStallFactor = 0.0;
    return p;
}

MachineParams
uManycoreConfigParams(std::uint32_t cores_per_village,
                      std::uint32_t villages_per_cluster,
                      std::uint32_t clusters)
{
    MachineParams p = uManycoreParams();
    if (cores_per_village * villages_per_cluster * clusters !=
        p.numCores) {
        fatal("config %ux%ux%u does not total %u cores",
              cores_per_village, villages_per_cluster, clusters,
              p.numCores);
    }
    p.name = strprintf("uManycore-%ux%ux%u", cores_per_village,
                       villages_per_cluster, clusters);
    p.coresPerVillage = cores_per_village;
    p.villagesPerCluster = villages_per_cluster;
    return p;
}

MachineParams
scaleOutParams()
{
    MachineParams p;
    p.name = "ScaleOut";
    p.numCores = 1024;
    p.coresPerVillage = 8;       // Same L2 sharing as μManycore.
    p.villagesPerCluster = 4;
    p.hasMemoryPool = true;
    p.core = manycoreCoreParams();
    p.perfFactor = 1.0;
    p.topo = MachineParams::Topo::FatTree;
    p.sched = MachineParams::Sched::SwQueue;
    p.swQueueCount = 32;         // One queue per 32-core cluster.
    p.cs = contextSwitchModel(CsScheme::Shinjuku);
    p.nic.hardwareRpc = false;   // Software RPC layer.
    p.coherence.scope = CoherenceScope::Global;
    p.dirStallFactor = 0.04;
    return p;
}

MachineParams
scaleOutMeshParams()
{
    MachineParams p = scaleOutParams();
    p.name = "ScaleOut-mesh";
    p.topo = MachineParams::Topo::Mesh;
    return p;
}

MachineParams
serverClassParams(std::uint32_t cores)
{
    MachineParams p;
    p.name = cores == 40 ? "ServerClass"
                         : strprintf("ServerClass-%u", cores);
    p.numCores = cores;
    p.coresPerVillage = 1;       // Private L2 per core.
    p.villagesPerCluster = 1;    // Each core is a mesh tile.
    p.hasMemoryPool = false;
    p.core = serverClassCoreParams();
    p.perfFactor = perfFactor(serverClassCoreParams(),
                              manycoreCoreParams());
    p.topo = MachineParams::Topo::Mesh;
    p.hopCycles = 5;
    p.sched = MachineParams::Sched::SwQueue;
    p.swQueueCount = 1;          // Centralized run queue.
    p.cs = contextSwitchModel(CsScheme::Shinjuku);
    p.nic.hardwareRpc = false;
    p.coherence.scope = CoherenceScope::Global;
    p.dirStallFactor = 0.04;
    return p;
}

MachineParams
ablationVillages()
{
    MachineParams p = scaleOutParams();
    p.name = "ScaleOut+villages";
    p.coherence.scope = CoherenceScope::Village;
    p.dirStallFactor = 0.0;
    // Migration confined to a village: one queue per village.
    p.swQueueCount = p.numCores / p.coresPerVillage;
    return p;
}

MachineParams
ablationLeafSpine()
{
    MachineParams p = ablationVillages();
    p.name = "+leaf-spine";
    p.topo = MachineParams::Topo::LeafSpine;
    return p;
}

MachineParams
ablationHwSched()
{
    MachineParams p = ablationLeafSpine();
    p.name = "+hw-sched";
    p.sched = MachineParams::Sched::HwRq;
    p.nic.hardwareRpc = true;
    // Context switching still software (Shinjuku costs).
    p.cs = contextSwitchModel(CsScheme::Shinjuku);
    return p;
}

MachineParams
ablationHwCs()
{
    MachineParams p = ablationHwSched();
    p.name = "+hw-cs";
    p.cs = contextSwitchModel(CsScheme::HardwareRq);
    return p;
}

} // namespace umany
