/**
 * @file
 * Village: the basic hardware cache-coherent unit of a μManycore
 * (§4.1) — a set of cores with a shared L2, a hardware Request
 * Queue, and local/remote I/O ports. The baselines reuse the same
 * structure as their L2-sharing domain (with the RQ disabled).
 */

#ifndef UMANY_ARCH_VILLAGE_HH
#define UMANY_ARCH_VILLAGE_HH

#include <memory>
#include <vector>

#include "noc/message.hh"
#include "rpc/nic.hh"
#include "sched/hw_rq.hh"
#include "sim/types.hh"

namespace umany
{

/** One village of a machine. */
struct Village
{
    VillageId id = 0;
    ClusterId cluster = 0;
    std::vector<CoreId> cores;
    EndpointId endpoint = 0; //!< Attachment point on the ICN.

    /** Hardware RQ; null on software-scheduled machines. */
    std::unique_ptr<HwRq> rq;

    /** L/R port cost model (shared; ports differ in transport). */
    std::unique_ptr<VillageNic> nic;

    /** Services with an instance in this village. */
    std::vector<ServiceId> services;

    Village() = default;
    Village(VillageId vid, ClusterId cid, EndpointId ep);

    bool hostsService(ServiceId s) const;
};

} // namespace umany

#endif // UMANY_ARCH_VILLAGE_HH
