#include "arch/server.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace umany
{

StorageBackend::StorageBackend(const StorageParams &p,
                               std::uint64_t seed)
    : p_(p), rng_(seed)
{
    if (p_.slots == 0)
        fatal("storage needs at least one slot");
    for (std::uint32_t s = 0; s < p_.slots; ++s)
        slots_.push(0);
}

Tick
StorageBackend::request(Tick when)
{
    ++requests_;
    const Tick free = slots_.top();
    slots_.pop();
    const Tick start = std::max(when, free);
    queueing_ += start - when;
    const double mean_us =
        rng_.chance(p_.fastProb) ? p_.fastMeanUs : p_.slowMeanUs;
    const Tick done = start + fromUs(rng_.expMean(mean_us));
    slots_.push(done);
    return done;
}

Server::Server(EventQueue &eq, ServerId id, const MachineParams &mp,
               const StorageParams &sp, std::uint64_t seed)
    : id_(id),
      machine_(strprintf("server%u.%s", id, mp.name.c_str()), eq, mp,
               id, seed),
      storage_(sp, seed ^ 0x57a6eull)
{
}

} // namespace umany
