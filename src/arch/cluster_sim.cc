#include "arch/cluster_sim.hh"

#include <algorithm>
#include <cmath>

#include "obs/attrib.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "validate/invariants.hh"

namespace umany
{

Tick
RecoveryParams::backoffDelay(std::uint32_t attempt) const
{
    // base * factor^(attempt - 1), saturating at the cap. Purely
    // deterministic: retry schedules replay exactly under one seed.
    double d = static_cast<double>(backoffBase);
    for (std::uint32_t i = 1; i < attempt; ++i) {
        d *= backoffFactor;
        if (d >= static_cast<double>(backoffCap))
            return backoffCap;
    }
    const Tick t = static_cast<Tick>(d);
    return t < backoffCap ? t : backoffCap;
}

ClusterSim::ClusterSim(EventQueue &eq, const ServiceCatalog &catalog,
                       const MachineParams &machine,
                       const ClusterSimParams &p)
    : eq_(eq), catalog_(catalog), p_(p),
      behaviorRng_(streamSeed(p.seed, rngstream::behavior)),
      placeRng_(streamSeed(p.seed, rngstream::placement))
{
    if (p_.numServers == 0)
        fatal("cluster needs at least one server");

    InterServerParams isp = p_.interServer;
    isp.numServers = p_.numServers;
    interServer_ = std::make_unique<InterServerNet>(isp);

    servers_.reserve(p_.numServers);
    for (ServerId s = 0; s < p_.numServers; ++s) {
        servers_.push_back(std::make_unique<Server>(
            eq, s, machine, p_.storage,
            streamSeed(p_.seed, rngstream::server + s)));
        if (p_.tracePidBase != 0)
            servers_[s]->machine().setTracePidBase(p_.tracePidBase);
        wireServer(s);
    }
    placeInstances();
    perEndpoint_.resize(catalog_.size());
    qosThreshold_.assign(catalog_.size(), 0);
    extPart_ = static_cast<std::uint16_t>(
        servers_[0]->machine().numClusters());

    if (p_.recovery.enabled) {
        // Retries conserve the request lifecycle: every launched
        // attempt resolves exactly once (response, stale response,
        // or timeout), and no task survives a clean drain.
        UMANY_INVARIANT(InvariantChecker::active()->addFinalAuditor(
            "cluster.recovery", [this](InvariantChecker &ic) {
                ic.expect(tasks_.empty(),
                          "%zu root tasks still open after drain",
                          tasks_.size());
                ic.expect(reqTask_.empty(),
                          "%zu attempts still mapped after drain",
                          reqTask_.size());
                ic.expect(attemptsLaunched_ == attemptsResolved_,
                          "attempt leak: %llu launched vs %llu "
                          "resolved",
                          static_cast<unsigned long long>(
                              attemptsLaunched_),
                          static_cast<unsigned long long>(
                              attemptsResolved_));
            }));
    }
}

ClusterSim::~ClusterSim() = default;

void
ClusterSim::enableSharding(std::uint32_t lanes, Tick record_from)
{
    if (onRackRootDone)
        fatal("rack-routed packages are serial-only (no sharding)");
    sharded_ = true;
    recordFrom_ = record_from;
    laneStores_.clear();
    laneBreakdown_.clear();
    laneBehaviorRng_.clear();
    lanePlaceRng_.clear();
    laneStores_.reserve(lanes);
    laneBreakdown_.reserve(lanes);
    laneBehaviorRng_.reserve(lanes);
    lanePlaceRng_.reserve(lanes);
    const std::uint64_t bb = streamSeed(
        streamSeed(p_.seed, rngstream::behavior), rngstream::lane);
    const std::uint64_t pb = streamSeed(
        streamSeed(p_.seed, rngstream::placement), rngstream::lane);
    for (std::uint32_t l = 0; l < lanes; ++l) {
        laneStores_.push_back(std::make_unique<LaneReqStore>());
        laneBreakdown_.push_back(std::make_unique<LaneBreakdown>());
        laneBehaviorRng_.emplace_back(streamSeed(bb, l));
        lanePlaceRng_.emplace_back(streamSeed(pb, l));
    }
    laneNextId_.assign(lanes, 1);
    for (auto &srv : servers_)
        srv->machine().enableSharding(lanes);
}

std::uint32_t
ClusterSim::curLane() const
{
    return ShardRuntime::currentLaneOr(
        static_cast<std::uint32_t>(laneStores_.size()));
}

const Summary &
ClusterSim::queuedTimeUs() const
{
    if (!sharded_)
        return queuedUs_;
    mergedQueuedUs_ = queuedUs_;
    for (const auto &b : laneBreakdown_)
        mergedQueuedUs_.merge(b->queuedUs);
    return mergedQueuedUs_;
}

const Summary &
ClusterSim::blockedTimeUs() const
{
    if (!sharded_)
        return blockedUs_;
    mergedBlockedUs_ = blockedUs_;
    for (const auto &b : laneBreakdown_)
        mergedBlockedUs_.merge(b->blockedUs);
    return mergedBlockedUs_;
}

const Summary &
ClusterSim::runningTimeUs() const
{
    if (!sharded_)
        return runningUs_;
    mergedRunningUs_ = runningUs_;
    for (const auto &b : laneBreakdown_)
        mergedRunningUs_.merge(b->runningUs);
    return mergedRunningUs_;
}

const Summary &
ClusterSim::requestCpuUtilization() const
{
    if (!sharded_)
        return reqUtil_;
    mergedReqUtil_ = reqUtil_;
    for (const auto &b : laneBreakdown_)
        mergedReqUtil_.merge(b->reqUtil);
    return mergedReqUtil_;
}

std::uint64_t
ClusterSim::requestsInFlight() const
{
    std::uint64_t n = requests_.size();
    for (const auto &st : laneStores_) {
        std::lock_guard<std::mutex> g(st->mu);
        n += st->reqs.size();
    }
    return n;
}

void
ClusterSim::placeInstances()
{
    // Deterministic proportional placement: every service gets at
    // least one instance on every server; remaining villages are
    // apportioned by loadWeight. Services may share villages when
    // villages are scarce (§4.1 allows colocated instances).
    for (auto &srv : servers_) {
        Machine &m = srv->machine();
        const std::uint32_t num_villages = m.numVillages();
        const std::size_t num_services = catalog_.size();

        double total_weight = 0.0;
        for (ServiceId s = 0; s < num_services; ++s)
            total_weight += catalog_.at(s).loadWeight;

        // Instances per service (>= 1 each).
        std::vector<std::uint32_t> count(num_services, 1);
        std::uint32_t assigned =
            static_cast<std::uint32_t>(num_services);
        if (num_villages > assigned) {
            const std::uint32_t spare = num_villages - assigned;
            for (ServiceId s = 0; s < num_services; ++s) {
                const std::uint32_t extra =
                    static_cast<std::uint32_t>(std::floor(
                        catalog_.at(s).loadWeight / total_weight *
                        spare));
                count[s] += extra;
                assigned += extra;
            }
            // Distribute the rounding remainder round-robin.
            ServiceId s = 0;
            while (assigned < num_villages) {
                count[s % num_services] += 1;
                ++assigned;
                ++s;
            }
        }

        // Interleave instances across villages so a cluster hosts a
        // mix of services.
        VillageId v = 0;
        bool placed_any = true;
        std::vector<std::uint32_t> left = count;
        while (placed_any) {
            placed_any = false;
            for (ServiceId s = 0; s < num_services; ++s) {
                if (left[s] == 0)
                    continue;
                left[s] -= 1;
                m.installInstance(s, v % num_villages);
                v += 1;
                placed_any = true;
            }
        }

        // Keep snapshots of local services in the cluster pools.
        for (ClusterId c = 0; c < m.numClusters(); ++c) {
            MemoryPool *pool = m.cluster(c).pool.get();
            if (pool == nullptr)
                continue;
            for (const VillageId vid : m.cluster(c).villages) {
                for (const ServiceId s : m.village(vid).services)
                    pool->storeSnapshot(s,
                                        catalog_.at(s).snapshotBytes);
            }
        }
    }
}

void
ClusterSim::wireServer(ServerId s)
{
    Machine &m = servers_[s]->machine();
    m.onRootComplete = [this, s](ServiceRequest *req) {
        handleRootComplete(s, req);
    };
    m.onStorageCall = [this, s](ServiceRequest *parent,
                                const CallStep &step) {
        handleStorageCall(s, parent, step);
    };
    m.onServiceCall = [this, s](ServiceRequest *parent,
                                const CallStep &step) {
        handleServiceCall(s, parent, step);
    };
    m.onRemoteChildFinished = [this, s](ServiceRequest *child) {
        handleRemoteChildFinished(s, child);
    };
    m.onChildConsumed = [this](ServiceRequest *child) {
        destroy(child);
    };
}

ServiceRequest *
ClusterSim::makeRequest(ServiceId service, ServiceRequest *parent)
{
    RequestId id;
    Rng *behavior = &behaviorRng_;
    if (sharded_) {
        // Lane-scoped ids: disjoint ranges without coordination, and
        // destroy() can recover the owning store from the upper bits.
        const std::uint32_t l = curLane();
        id = (static_cast<RequestId>(l + 1) << 48) |
             laneNextId_[l]++;
        behavior = &laneBehaviorRng_[l];
    } else {
        id = p_.idBase + nextId_++;
    }
    auto req = std::make_unique<ServiceRequest>(
        id, service, catalog_.makeBehavior(service, *behavior));
    req->parent = parent;
    req->createdAt = eq_.now();
    ServiceRequest *raw = req.get();
    UMANY_ATTRIB(AttribRegistry::active()->onCreate(*raw, eq_.now()));
    if (sharded_) {
        LaneReqStore &st = *laneStores_[curLane()];
        std::lock_guard<std::mutex> g(st.mu);
        st.reqs.emplace(id, std::move(req));
    } else {
        requests_.emplace(id, std::move(req));
    }
    return raw;
}

void
ClusterSim::destroy(ServiceRequest *req)
{
    // §3.3 accounting: where each service request's lifetime went.
    if (recordingAt(eq_.now()) && !req->rejected &&
        req->state == ReqState::Finished) {
        const double queued = toUs(req->queuedTime);
        const double blocked = toUs(req->blockedTime);
        const double running = toUs(req->runningTime);
        const double total = queued + blocked + running;
        if (sharded_) {
            LaneBreakdown &b = *laneBreakdown_[curLane()];
            b.queuedUs.add(queued);
            b.blockedUs.add(blocked);
            b.runningUs.add(running);
            if (total > 0.0)
                b.reqUtil.add(running / total);
        } else {
            queuedUs_.add(queued);
            blockedUs_.add(blocked);
            runningUs_.add(running);
            if (total > 0.0)
                reqUtil_.add(running / total);
        }
        // Same population as the Summaries above, so the ledger
        // aggregates are 1:1 comparable against §3.3.
        UMANY_ATTRIB(AttribRegistry::active()->accumulate(*req));
    }
    UMANY_INVARIANT(InvariantChecker::active()->onDestroy(*req));
    UMANY_ATTRIB(AttribRegistry::active()->onDestroy(*req, eq_.now()));
    if (sharded_) {
        const RequestId id = req->id();
        const std::uint32_t l =
            static_cast<std::uint32_t>(id >> 48) - 1;
        LaneReqStore &st = *laneStores_[l];
        std::lock_guard<std::mutex> g(st.mu);
        st.reqs.erase(id);
    } else {
        requests_.erase(req->id());
    }
}

void
ClusterSim::submitRoot(ServiceId endpoint)
{
    submitRoot(endpoint, 0);
}

void
ClusterSim::submitRoot(ServiceId endpoint, std::uint64_t rack_ctx)
{
    if (p_.recovery.enabled) {
        const std::uint64_t task_id = nextTask_++;
        RootTask &t = tasks_[task_id];
        t.endpoint = endpoint;
        t.firstSubmit = eq_.now();
        t.rackCtx = rack_ctx;
        launchAttempt(task_id);
        return;
    }

    ServiceRequest *req = makeRequest(endpoint, nullptr);
    if (rack_ctx != 0)
        rackCtx_.emplace(req->id(), rack_ctx);
    req->rootEndpoint = endpoint;
    req->reqBytes = 512;
    req->respBytes = 2048;

    const ServerId target = rrServer_++ % servers_.size();
    UMANY_TRACE({
        traceReqCreated(eq_.now(), *req, target, p_.tracePidBase);
        if (rack_ctx != 0) {
            // Terminate the LB's dispatch arrow on the root's first
            // span inside this package.
            TraceSink::active()->flowEnd(
                eq_.now(), p_.tracePidBase + target, 0, "rack.req",
                traceRackReqFlowBit | rack_ctx);
        }
    });
    const Tick arrive =
        eq_.now() +
        servers_[target]->machine().topNic().params().extLatency;
    eq_.schedule(arrive, evTagExt(EvSrc::NetExternal),
                 [this, req, target]() {
        servers_[target]->machine().externalArrival(req);
    });
}

void
ClusterSim::launchAttempt(std::uint64_t task_id)
{
    RootTask &t = tasks_[task_id];
    t.attempt += 1;
    t.generation += 1;
    const std::uint64_t gen = t.generation;
    ++attemptsLaunched_;

    ServiceRequest *req = makeRequest(t.endpoint, nullptr);
    req->rootEndpoint = t.endpoint;
    req->reqBytes = 512;
    req->respBytes = 2048;
    t.inFlight = req->id();
    reqTask_.emplace(req->id(), task_id);

    // Round-robin over servers like the legacy path; a retry
    // naturally lands on a different server than the attempt that
    // timed out.
    const ServerId target = rrServer_++ % servers_.size();
    t.lastTarget = target;
    UMANY_TRACE({
        traceReqCreated(eq_.now(), *req, target, p_.tracePidBase);
        if (t.rackCtx != 0 && t.attempt == 1) {
            TraceSink::active()->flowEnd(
                eq_.now(), p_.tracePidBase + target, 0, "rack.req",
                traceRackReqFlowBit | t.rackCtx);
        }
    });
    const Tick arrive =
        eq_.now() +
        servers_[target]->machine().topNic().params().extLatency;
    eq_.schedule(arrive, evTagExt(EvSrc::NetExternal),
                 [this, req, target]() {
        servers_[target]->machine().externalArrival(req);
    });

    // The event queue has no cancel primitive: the timeout carries
    // the attempt generation and no-ops once the attempt resolved.
    eq_.schedule(eq_.now() + p_.recovery.timeout,
                 evTagExt(EvSrc::ClientRetry),
                 [this, task_id, gen]() {
                     onAttemptTimeout(task_id, gen);
                 });
}

void
ClusterSim::onAttemptTimeout(std::uint64_t task_id,
                             std::uint64_t gen)
{
    auto it = tasks_.find(task_id);
    if (it == tasks_.end() || it->second.generation != gen)
        return; // The attempt resolved before the deadline.
    RootTask &t = it->second;
    if (recording_)
        ++timeouts_;
    UMANY_TRACE(TraceSink::active()->instant(
        eq_.now(), p_.tracePidBase + t.lastTarget, traceClientTrack,
        "recovery.timeout", task_id));

    // Abandon the in-flight attempt: sever the mapping so its
    // eventual response is recognized as stale.
    if (t.inFlight != 0) {
        reqTask_.erase(t.inFlight);
        t.inFlight = 0;
    }
    if (t.attempt > p_.recovery.maxRetries) {
        // Retry budget exhausted: the client gives up.
        if (recording_) {
            ++observedRoots_;
            ++rejectedRoots_;
            ++shedRoots_;
        }
        UMANY_TRACE(TraceSink::active()->instant(
            eq_.now(), p_.tracePidBase + t.lastTarget, traceClientTrack,
            "recovery.giveup", task_id));
        // A rack-routed root still owes the rack its context back
        // (no response ever crosses the rack network on a give-up).
        if (t.rackCtx != 0 && onRackRootDone)
            onRackRootDone(nullptr, t.rackCtx, 0, false);
        tasks_.erase(it);
        return;
    }
    scheduleRetry(task_id);
}

void
ClusterSim::scheduleRetry(std::uint64_t task_id)
{
    RootTask &t = tasks_[task_id];
    if (recording_)
        ++retries_;
    const std::uint64_t gen = ++t.generation;
    const Tick delay = p_.recovery.backoffDelay(t.attempt);
    UMANY_TRACE(TraceSink::active()->instant(
        eq_.now(), p_.tracePidBase + t.lastTarget, traceClientTrack, "recovery.retry",
        task_id, static_cast<double>(t.attempt)));
    eq_.schedule(eq_.now() + delay, evTagExt(EvSrc::ClientRetry),
                 [this, task_id, gen]() {
        auto it = tasks_.find(task_id);
        if (it == tasks_.end() || it->second.generation != gen)
            return;
        launchAttempt(task_id);
    });
}

void
ClusterSim::recoveredRootComplete(ServiceRequest *req)
{
    ++attemptsResolved_;
    auto rit = reqTask_.find(req->id());
    if (rit == reqTask_.end()) {
        // The client already timed this attempt out; the response
        // arrived too late to matter.
        if (recording_)
            ++staleResponses_;
        destroy(req);
        return;
    }
    const std::uint64_t task_id = rit->second;
    reqTask_.erase(rit);
    RootTask &t = tasks_[task_id];
    t.generation += 1; // Defuses this attempt's pending timeout.
    t.inFlight = 0;

    if (req->rejected && p_.recovery.retryRejects &&
        t.attempt <= p_.recovery.maxRetries) {
        destroy(req);
        scheduleRetry(task_id);
        return;
    }

    // Final word for this task: client-observed latency spans every
    // attempt and backoff wait, from the first submit.
    Tick latency = eq_.now() - t.firstSubmit;
    Tick hop = 0;
    Tick clientStart = t.firstSubmit;
    if (t.rackCtx != 0 && onRackRootDone) {
        const RackRootInfo info =
            onRackRootDone(req, t.rackCtx, latency, !req->rejected);
        if (!req->rejected) {
            latency = info.latency;
            hop = info.hopTicks;
            clientStart = info.clientStart;
        }
    }
    const Tick first_submit = t.firstSubmit;
    const ServiceId ep = t.endpoint;
    if (recording_) {
        ++observedRoots_;
        if (req->rejected) {
            ++rejectedRoots_;
        } else {
            ++completedRoots_;
            perEndpoint_[ep].add(latency);
            allLatency_.add(latency);
            const Tick threshold = qosThreshold_[ep];
            if (threshold != 0 && latency > threshold)
                ++qosViolations_;
            UMANY_ATTRIB({
                AttribRegistry *ar = AttribRegistry::active();
                ar->noteRetryWait(*req, first_submit);
                if (hop != 0)
                    ar->noteInterPackageHop(*req, clientStart, hop);
                ar->markRootObserved(*req, latency);
            });
        }
    }
    tasks_.erase(task_id);
    destroy(req);
}

void
ClusterSim::handleRootComplete(ServerId, ServiceRequest *req)
{
    if (p_.recovery.enabled) {
        recoveredRootComplete(req);
        return;
    }
    Tick latency = eq_.now() - req->createdAt;
    Tick hop = 0;
    Tick clientStart = req->createdAt;
    // Rack-routed roots: let the rack layer account both inter-
    // package hops and hand back the client-observed latency, so
    // this package's histograms and ledger record what the rack's
    // client saw, not the package-local view.
    if (onRackRootDone && !rackCtx_.empty()) {
        const auto it = rackCtx_.find(req->id());
        if (it != rackCtx_.end()) {
            const std::uint64_t ctx = it->second;
            rackCtx_.erase(it);
            const RackRootInfo info =
                onRackRootDone(req, ctx, latency, !req->rejected);
            if (!req->rejected) {
                latency = info.latency;
                hop = info.hopTicks;
                clientStart = info.clientStart;
            }
        }
    }
    if (recordingAt(eq_.now())) {
        ++observedRoots_;
        if (req->rejected) {
            ++rejectedRoots_;
        } else {
            ++completedRoots_;
            perEndpoint_[req->rootEndpoint].add(latency);
            allLatency_.add(latency);
            const Tick threshold = qosThreshold_[req->rootEndpoint];
            if (threshold != 0 && latency > threshold)
                ++qosViolations_;
            UMANY_ATTRIB({
                AttribRegistry *ar = AttribRegistry::active();
                if (hop != 0)
                    ar->noteInterPackageHop(*req, clientStart, hop);
                ar->markRootObserved(*req, latency);
            });
        }
    }
    destroy(req);
}

void
ClusterSim::handleStorageCall(ServerId s, ServiceRequest *parent,
                              const CallStep &step)
{
    // Called when the access reaches the storage tier; completion
    // returns over the external network to the parent's package.
    StorageBackend &storage = servers_[s]->storage();
    const Tick done = storage.request(eq_.now());
    const Tick back =
        done +
        servers_[s]->machine().topNic().params().extLatency;
    const std::uint32_t bytes = step.responseBytes;
    eq_.schedule(back, evTagExt(EvSrc::NetExternal),
                 [this, s, parent, bytes]() {
        servers_[s]->machine().externalResponse(parent, bytes);
    });
}

void
ClusterSim::handleServiceCall(ServerId s, ServiceRequest *parent,
                              const CallStep &step)
{
    // Resolve placement: stay local with probability localCallBias
    // (an instance exists on every server by construction).
    Rng &place = sharded_ ? lanePlaceRng_[curLane()] : placeRng_;
    ServerId target = s;
    if (servers_.size() > 1 && !place.chance(p_.localCallBias)) {
        target = static_cast<ServerId>(
            place.below(servers_.size() - 1));
        if (target >= s)
            ++target;
    }

    ServiceRequest *child = makeRequest(step.callee, parent);
    child->reqBytes = step.requestBytes;
    child->respBytes = step.responseBytes;
    UMANY_TRACE(traceReqCreated(eq_.now(), *child, target,
                                p_.tracePidBase));

    Machine &src = servers_[s]->machine();
    if (target == s) {
        src.localCall(child, parent->village);
        return;
    }

    child->server = target;
    src.outboundRequest(child, parent->village, [this, s, target,
                                                 child]() {
        const Tick arrive = interServer_->send(
            s, target, child->reqBytes, eq_.now());
        eq_.schedule(arrive, evTagExt(EvSrc::NetExternal),
                     [this, target, child]() {
            servers_[target]->machine().externalArrival(child);
        });
    });
}

void
ClusterSim::handleRemoteChildFinished(ServerId s,
                                      ServiceRequest *child)
{
    ServiceRequest *parent = child->parent;
    const ServerId home = parent->server;
    const std::uint32_t bytes = child->respBytes;
    const Tick arrive =
        interServer_->send(s, home, bytes, eq_.now());
    eq_.schedule(arrive, evTagExt(EvSrc::NetExternal),
                 [this, home, parent, bytes]() {
        servers_[home]->machine().externalResponse(parent, bytes);
    });
    destroy(child);
}

void
ClusterSim::setQosThreshold(ServiceId endpoint, Tick threshold)
{
    qosThreshold_[endpoint] = threshold;
}

const Histogram &
ClusterSim::endpointLatency(ServiceId endpoint) const
{
    return perEndpoint_[endpoint];
}

} // namespace umany
