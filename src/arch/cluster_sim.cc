#include "arch/cluster_sim.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "validate/invariants.hh"

namespace umany
{

ClusterSim::ClusterSim(EventQueue &eq, const ServiceCatalog &catalog,
                       const MachineParams &machine,
                       const ClusterSimParams &p)
    : eq_(eq), catalog_(catalog), p_(p),
      behaviorRng_(streamSeed(p.seed, rngstream::behavior)),
      placeRng_(streamSeed(p.seed, rngstream::placement))
{
    if (p_.numServers == 0)
        fatal("cluster needs at least one server");

    InterServerParams isp = p_.interServer;
    isp.numServers = p_.numServers;
    interServer_ = std::make_unique<InterServerNet>(isp);

    servers_.reserve(p_.numServers);
    for (ServerId s = 0; s < p_.numServers; ++s) {
        servers_.push_back(std::make_unique<Server>(
            eq, s, machine, p_.storage,
            streamSeed(p_.seed, rngstream::server + s)));
        wireServer(s);
    }
    placeInstances();
    perEndpoint_.resize(catalog_.size());
    qosThreshold_.assign(catalog_.size(), 0);
}

ClusterSim::~ClusterSim() = default;

void
ClusterSim::placeInstances()
{
    // Deterministic proportional placement: every service gets at
    // least one instance on every server; remaining villages are
    // apportioned by loadWeight. Services may share villages when
    // villages are scarce (§4.1 allows colocated instances).
    for (auto &srv : servers_) {
        Machine &m = srv->machine();
        const std::uint32_t num_villages = m.numVillages();
        const std::size_t num_services = catalog_.size();

        double total_weight = 0.0;
        for (ServiceId s = 0; s < num_services; ++s)
            total_weight += catalog_.at(s).loadWeight;

        // Instances per service (>= 1 each).
        std::vector<std::uint32_t> count(num_services, 1);
        std::uint32_t assigned =
            static_cast<std::uint32_t>(num_services);
        if (num_villages > assigned) {
            const std::uint32_t spare = num_villages - assigned;
            for (ServiceId s = 0; s < num_services; ++s) {
                const std::uint32_t extra =
                    static_cast<std::uint32_t>(std::floor(
                        catalog_.at(s).loadWeight / total_weight *
                        spare));
                count[s] += extra;
                assigned += extra;
            }
            // Distribute the rounding remainder round-robin.
            ServiceId s = 0;
            while (assigned < num_villages) {
                count[s % num_services] += 1;
                ++assigned;
                ++s;
            }
        }

        // Interleave instances across villages so a cluster hosts a
        // mix of services.
        VillageId v = 0;
        bool placed_any = true;
        std::vector<std::uint32_t> left = count;
        while (placed_any) {
            placed_any = false;
            for (ServiceId s = 0; s < num_services; ++s) {
                if (left[s] == 0)
                    continue;
                left[s] -= 1;
                m.installInstance(s, v % num_villages);
                v += 1;
                placed_any = true;
            }
        }

        // Keep snapshots of local services in the cluster pools.
        for (ClusterId c = 0; c < m.numClusters(); ++c) {
            MemoryPool *pool = m.cluster(c).pool.get();
            if (pool == nullptr)
                continue;
            for (const VillageId vid : m.cluster(c).villages) {
                for (const ServiceId s : m.village(vid).services)
                    pool->storeSnapshot(s,
                                        catalog_.at(s).snapshotBytes);
            }
        }
    }
}

void
ClusterSim::wireServer(ServerId s)
{
    Machine &m = servers_[s]->machine();
    m.onRootComplete = [this, s](ServiceRequest *req) {
        handleRootComplete(s, req);
    };
    m.onStorageCall = [this, s](ServiceRequest *parent,
                                const CallStep &step) {
        handleStorageCall(s, parent, step);
    };
    m.onServiceCall = [this, s](ServiceRequest *parent,
                                const CallStep &step) {
        handleServiceCall(s, parent, step);
    };
    m.onRemoteChildFinished = [this, s](ServiceRequest *child) {
        handleRemoteChildFinished(s, child);
    };
    m.onChildConsumed = [this](ServiceRequest *child) {
        destroy(child);
    };
}

ServiceRequest *
ClusterSim::makeRequest(ServiceId service, ServiceRequest *parent)
{
    const RequestId id = nextId_++;
    auto req = std::make_unique<ServiceRequest>(
        id, service, catalog_.makeBehavior(service, behaviorRng_));
    req->parent = parent;
    req->createdAt = eq_.now();
    ServiceRequest *raw = req.get();
    requests_.emplace(id, std::move(req));
    return raw;
}

void
ClusterSim::destroy(ServiceRequest *req)
{
    // §3.3 accounting: where each service request's lifetime went.
    if (recording_ && !req->rejected &&
        req->state == ReqState::Finished) {
        const double queued = toUs(req->queuedTime);
        const double blocked = toUs(req->blockedTime);
        const double running = toUs(req->runningTime);
        queuedUs_.add(queued);
        blockedUs_.add(blocked);
        runningUs_.add(running);
        const double total = queued + blocked + running;
        if (total > 0.0)
            reqUtil_.add(running / total);
    }
    UMANY_INVARIANT(InvariantChecker::active()->onDestroy(*req));
    requests_.erase(req->id());
}

void
ClusterSim::submitRoot(ServiceId endpoint)
{
    ServiceRequest *req = makeRequest(endpoint, nullptr);
    req->rootEndpoint = endpoint;
    req->reqBytes = 512;
    req->respBytes = 2048;

    const ServerId target = rrServer_++ % servers_.size();
    UMANY_TRACE(traceReqCreated(eq_.now(), *req, target));
    const Tick arrive =
        eq_.now() +
        servers_[target]->machine().topNic().params().extLatency;
    eq_.schedule(arrive, [this, req, target]() {
        servers_[target]->machine().externalArrival(req);
    });
}

void
ClusterSim::handleRootComplete(ServerId, ServiceRequest *req)
{
    const Tick latency = eq_.now() - req->createdAt;
    if (recording_) {
        ++observedRoots_;
        if (req->rejected) {
            ++rejectedRoots_;
        } else {
            ++completedRoots_;
            perEndpoint_[req->rootEndpoint].add(latency);
            allLatency_.add(latency);
            const Tick threshold = qosThreshold_[req->rootEndpoint];
            if (threshold != 0 && latency > threshold)
                ++qosViolations_;
        }
    }
    destroy(req);
}

void
ClusterSim::handleStorageCall(ServerId s, ServiceRequest *parent,
                              const CallStep &step)
{
    // Called when the access reaches the storage tier; completion
    // returns over the external network to the parent's package.
    StorageBackend &storage = servers_[s]->storage();
    const Tick done = storage.request(eq_.now());
    const Tick back =
        done +
        servers_[s]->machine().topNic().params().extLatency;
    const std::uint32_t bytes = step.responseBytes;
    eq_.schedule(back, [this, s, parent, bytes]() {
        servers_[s]->machine().externalResponse(parent, bytes);
    });
}

void
ClusterSim::handleServiceCall(ServerId s, ServiceRequest *parent,
                              const CallStep &step)
{
    // Resolve placement: stay local with probability localCallBias
    // (an instance exists on every server by construction).
    ServerId target = s;
    if (servers_.size() > 1 && !placeRng_.chance(p_.localCallBias)) {
        target = static_cast<ServerId>(
            placeRng_.below(servers_.size() - 1));
        if (target >= s)
            ++target;
    }

    ServiceRequest *child = makeRequest(step.callee, parent);
    child->reqBytes = step.requestBytes;
    child->respBytes = step.responseBytes;
    UMANY_TRACE(traceReqCreated(eq_.now(), *child, target));

    Machine &src = servers_[s]->machine();
    if (target == s) {
        src.localCall(child, parent->village);
        return;
    }

    child->server = target;
    src.outboundRequest(child, parent->village, [this, s, target,
                                                 child]() {
        const Tick arrive = interServer_->send(
            s, target, child->reqBytes, eq_.now());
        eq_.schedule(arrive, [this, target, child]() {
            servers_[target]->machine().externalArrival(child);
        });
    });
}

void
ClusterSim::handleRemoteChildFinished(ServerId s,
                                      ServiceRequest *child)
{
    ServiceRequest *parent = child->parent;
    const ServerId home = parent->server;
    const std::uint32_t bytes = child->respBytes;
    const Tick arrive =
        interServer_->send(s, home, bytes, eq_.now());
    eq_.schedule(arrive, [this, home, parent, bytes]() {
        servers_[home]->machine().externalResponse(parent, bytes);
    });
    destroy(child);
}

void
ClusterSim::setQosThreshold(ServiceId endpoint, Tick threshold)
{
    qosThreshold_[endpoint] = threshold;
}

const Histogram &
ClusterSim::endpointLatency(ServiceId endpoint) const
{
    return perEndpoint_[endpoint];
}

} // namespace umany
