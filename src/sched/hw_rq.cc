#include "sched/hw_rq.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace umany
{

HwRq::HwRq(const HwRqParams &p) : p_(p)
{
    if (p_.entries == 0)
        fatal("hardware RQ needs at least one entry");
}

void
HwRq::registerService(ServiceId service)
{
    services_.push_back(service);
    perService_.emplace(service, 0);
}

std::uint32_t
HwRq::partitionQuota() const
{
    // Equal apportioning of the RQ_Map partitions (§4.3).
    return p_.entries /
           std::max<std::uint32_t>(
               1, static_cast<std::uint32_t>(services_.size()));
}

RqAdmit
HwRq::admit(std::uint64_t seq, ServiceRequest *req)
{
    const bool within_partition =
        !p_.partitioned || services_.size() <= 1 ||
        perService_[req->service()] < partitionQuota();
    if (inFlight_ < p_.entries && within_partition) {
        ++inFlight_;
        ++admitted_;
        if (p_.partitioned)
            perService_[req->service()] += 1;
        ready_.insert(seq, req);
        return RqAdmit::Admitted;
    }
    if (nicBuffer_.size() < p_.nicBufferEntries) {
        nicBuffer_.emplace_back(seq, req);
        return RqAdmit::Buffered;
    }
    ++rejected_;
    return RqAdmit::Rejected;
}

void
HwRq::makeReady(std::uint64_t seq, ServiceRequest *req)
{
    // The entry already counts against inFlight_ (it was admitted
    // and is currently blocked); only the ready order changes.
    ready_.insert(seq, req);
}

ServiceRequest *
HwRq::dequeue(Tick now, Tick &done)
{
    done = now + cyclesToTicks(
                     static_cast<double>(p_.dequeueCycles), p_.ghz);
    return ready_.popFront();
}

ServiceRequest *
HwRq::dequeueBy(Tick now, Tick &done, const ReadyList::KeyFn &key)
{
    done = now + cyclesToTicks(
                     static_cast<double>(p_.dequeueCycles), p_.ghz);
    return ready_.popMinBy(key);
}

ServiceRequest *
HwRq::stealYoungest(ServiceRequest *&promoted)
{
    promoted = nullptr;
    ServiceRequest *req = ready_.popBack();
    if (req == nullptr)
        return nullptr;
    ++stealsOut_;
    promoted = releaseEntry(req->service());
    return req;
}

void
HwRq::adoptStolen(ServiceId service)
{
    ++inFlight_;
    ++stealsIn_;
    if (p_.partitioned)
        perService_[service] += 1;
}

ServiceRequest *
HwRq::complete(ServiceId finished_service)
{
    if (inFlight_ == 0)
        panic("RQ complete with no in-flight entries");
    ++completes_;
    return releaseEntry(finished_service);
}

ServiceRequest *
HwRq::releaseEntry(ServiceId finished_service)
{
    if (inFlight_ == 0)
        panic("RQ entry release with no in-flight entries");
    --inFlight_;
    if (p_.partitioned) {
        auto it = perService_.find(finished_service);
        if (it != perService_.end() && it->second > 0)
            it->second -= 1;
    }
    if (nicBuffer_.empty())
        return nullptr;
    // Promote the oldest buffered request whose partition has room.
    for (auto it = nicBuffer_.begin(); it != nicBuffer_.end(); ++it) {
        auto [seq, req] = *it;
        if (p_.partitioned && services_.size() > 1 &&
            perService_[req->service()] >= partitionQuota()) {
            continue;
        }
        nicBuffer_.erase(it);
        ++inFlight_;
        ++admitted_;
        if (p_.partitioned)
            perService_[req->service()] += 1;
        ready_.insert(seq, req);
        return req;
    }
    return nullptr;
}

void
HwRq::coreIdle(CoreId core)
{
    idleCores_.push_back(core);
}

void
HwRq::coreBusy(CoreId core)
{
    auto it = std::find(idleCores_.begin(), idleCores_.end(), core);
    if (it != idleCores_.end())
        idleCores_.erase(it);
}

CoreId
HwRq::claimIdleCore()
{
    if (idleCores_.empty())
        return invalidId;
    const CoreId core = idleCores_.back();
    idleCores_.pop_back();
    return core;
}

} // namespace umany
