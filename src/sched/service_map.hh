/**
 * @file
 * ServiceMap (§4.2, Fig 12): the top-level NIC's table mapping each
 * service ID to the set of villages hosting an instance, consulted
 * in hardware on arrival and walked round-robin.
 */

#ifndef UMANY_SCHED_SERVICE_MAP_HH
#define UMANY_SCHED_SERVICE_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace umany
{

/** Per-package service-to-villages table with round-robin pick. */
class ServiceMap
{
  public:
    /** Register an instance of @p service in @p village. */
    void addInstance(ServiceId service, VillageId village);

    /** True if at least one instance of @p service exists. */
    bool hasService(ServiceId service) const;

    /** Round-robin choice among the hosting villages. */
    VillageId pick(ServiceId service);

    /** All villages hosting @p service. */
    const std::vector<VillageId> &villagesOf(ServiceId service) const;

    /** Services with at least one instance. */
    std::size_t serviceCount() const;

    std::uint64_t lookups() const { return lookups_; }

  private:
    struct Entry
    {
        std::vector<VillageId> villages;
        std::size_t next = 0;
    };
    std::vector<Entry> entries_; //!< Indexed by ServiceId.
    std::uint64_t lookups_ = 0;

    static const std::vector<VillageId> emptyList_;
};

} // namespace umany

#endif // UMANY_SCHED_SERVICE_MAP_HH
