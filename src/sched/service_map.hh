/**
 * @file
 * ServiceMap (§4.2, Fig 12): the top-level NIC's table mapping each
 * service ID to the set of villages hosting an instance, consulted
 * in hardware on arrival and walked round-robin.
 */

#ifndef UMANY_SCHED_SERVICE_MAP_HH
#define UMANY_SCHED_SERVICE_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace umany
{

/** Per-package service-to-villages table with round-robin pick. */
class ServiceMap
{
  public:
    /** Register an instance of @p service in @p village. */
    void addInstance(ServiceId service, VillageId village);

    /** True if at least one instance of @p service exists. */
    bool hasService(ServiceId service) const;

    /** Round-robin choice among the hosting villages. */
    VillageId pick(ServiceId service);

    /**
     * Size the per-lane round-robin cursors and lookup counters for
     * parallel-DES mode (sim/shard.hh). Call after all instances are
     * installed and before any pickLane().
     */
    void enableSharding(std::uint32_t lanes);

    /**
     * Round-robin pick advancing @p lane's private cursor: each lane
     * walks its own rotation through the instance list, so the
     * choice sequence depends only on the lane's arrival order, not
     * on cross-lane interleaving (and hence not on the shard count).
     */
    VillageId pickLane(ServiceId service, std::uint32_t lane);

    /**
     * Round-robin choice skipping villages marked down; returns
     * invalidId when no live instance exists. Only used when the
     * machine is degraded — pick() keeps the healthy arithmetic.
     */
    VillageId pickLive(ServiceId service);

    /** Mark a village up/down for re-dispatch purposes. */
    void setVillageUp(VillageId village, bool up);

    /** Whether @p village is accepting dispatches. */
    bool
    villageUp(VillageId village) const
    {
        return village >= villageDown_.size() ||
               villageDown_[village] == 0;
    }

    /** Number of villages currently marked down. */
    std::size_t villagesDown() const { return downCount_; }

    /** All villages hosting @p service. */
    const std::vector<VillageId> &villagesOf(ServiceId service) const;

    /** Services with at least one instance. */
    std::size_t serviceCount() const;

    std::uint64_t lookups() const;

  private:
    struct Entry
    {
        std::vector<VillageId> villages;
        std::size_t next = 0;
    };
    std::vector<Entry> entries_; //!< Indexed by ServiceId.
    std::vector<std::uint8_t> villageDown_; //!< Indexed by VillageId.
    std::size_t downCount_ = 0;
    std::uint64_t lookups_ = 0;

    /** Per-lane RR cursors, [lane][service]; empty when serial. */
    std::vector<std::vector<std::size_t>> laneNext_;
    std::vector<std::uint64_t> laneLookups_; //!< Indexed by lane.

    static const std::vector<VillageId> emptyList_;
};

} // namespace umany

#endif // UMANY_SCHED_SERVICE_MAP_HH
