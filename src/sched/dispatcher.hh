/**
 * @file
 * Software dispatcher: the serialized scheduling path of the
 * baseline machines (Shinjuku-style dedicated dispatcher core,
 * §4.4). Every NIC-to-queue routing decision runs through it, so
 * it saturates under load — one of the bottlenecks μManycore's
 * in-hardware ServiceMap dispatch removes.
 */

#ifndef UMANY_SCHED_DISPATCHER_HH
#define UMANY_SCHED_DISPATCHER_HH

#include <cstdint>

#include "sim/types.hh"

namespace umany
{

/** Dispatcher cost parameters. */
struct DispatcherParams
{
    Cycles opCycles = 5000; //!< Per routed message.
    double ghz = 2.0;
};

/** A serial software dispatch resource. */
class SwDispatcher
{
  public:
    explicit SwDispatcher(const DispatcherParams &p) : p_(p) {}

    /**
     * Process one dispatch starting at @p now.
     * @return Completion tick (serialized after earlier work).
     */
    Tick process(Tick now);

    /**
     * Process one op of explicit cost (e.g. a context-switch save or
     * restore running on the dispatcher core, §4.4).
     */
    Tick process(Tick now, Cycles cycles);

    std::uint64_t ops() const { return ops_; }
    Tick busyTime() const { return busyTime_; }
    /** Tick at which the serialized resource next frees (invariant:
     *  accumulated busy time never exceeds this). */
    Tick freeAt() const { return free_; }

    /** Utilization over [0, now]. */
    double utilization(Tick now) const;

    /** Server id used as the pid of emitted trace events. */
    void setTracePid(std::uint32_t pid) { tracePid_ = pid; }

  private:
    DispatcherParams p_;
    std::uint32_t tracePid_ = 0;
    Tick free_ = 0;
    std::uint64_t ops_ = 0;
    Tick busyTime_ = 0;
};

} // namespace umany

#endif // UMANY_SCHED_DISPATCHER_HH
