#include "sched/service_map.hh"

#include "sim/logging.hh"

namespace umany
{

const std::vector<VillageId> ServiceMap::emptyList_;

void
ServiceMap::addInstance(ServiceId service, VillageId village)
{
    if (service >= entries_.size())
        entries_.resize(service + 1);
    entries_[service].villages.push_back(village);
}

bool
ServiceMap::hasService(ServiceId service) const
{
    return service < entries_.size() &&
           !entries_[service].villages.empty();
}

VillageId
ServiceMap::pick(ServiceId service)
{
    if (!hasService(service))
        panic("ServiceMap: no instance of service %u", service);
    ++lookups_;
    Entry &e = entries_[service];
    const VillageId v = e.villages[e.next % e.villages.size()];
    e.next = (e.next + 1) % e.villages.size();
    return v;
}

void
ServiceMap::enableSharding(std::uint32_t lanes)
{
    laneNext_.assign(lanes,
                     std::vector<std::size_t>(entries_.size(), 0));
    laneLookups_.assign(lanes, 0);
}

VillageId
ServiceMap::pickLane(ServiceId service, std::uint32_t lane)
{
    if (!hasService(service))
        panic("ServiceMap: no instance of service %u", service);
    if (lane >= laneNext_.size() ||
        service >= laneNext_[lane].size()) {
        panic("ServiceMap: lane %u / service %u outside the sharded "
              "cursor table", lane, service);
    }
    ++laneLookups_[lane];
    const Entry &e = entries_[service];
    std::size_t &next = laneNext_[lane][service];
    const VillageId v = e.villages[next % e.villages.size()];
    next = (next + 1) % e.villages.size();
    return v;
}

std::uint64_t
ServiceMap::lookups() const
{
    std::uint64_t total = lookups_;
    for (const std::uint64_t n : laneLookups_)
        total += n;
    return total;
}

VillageId
ServiceMap::pickLive(ServiceId service)
{
    if (!hasService(service))
        panic("ServiceMap: no instance of service %u", service);
    ++lookups_;
    Entry &e = entries_[service];
    for (std::size_t i = 0; i < e.villages.size(); ++i) {
        const VillageId v = e.villages[e.next % e.villages.size()];
        e.next = (e.next + 1) % e.villages.size();
        if (villageUp(v))
            return v;
    }
    return invalidId;
}

void
ServiceMap::setVillageUp(VillageId village, bool up)
{
    if (village >= villageDown_.size()) {
        if (up)
            return;
        villageDown_.resize(village + 1, 0);
    }
    if ((villageDown_[village] == 0) == up)
        return;
    villageDown_[village] = up ? 0 : 1;
    if (up)
        --downCount_;
    else
        ++downCount_;
}

const std::vector<VillageId> &
ServiceMap::villagesOf(ServiceId service) const
{
    if (service >= entries_.size())
        return emptyList_;
    return entries_[service].villages;
}

std::size_t
ServiceMap::serviceCount() const
{
    std::size_t n = 0;
    for (const auto &e : entries_) {
        if (!e.villages.empty())
            ++n;
    }
    return n;
}

} // namespace umany
