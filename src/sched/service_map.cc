#include "sched/service_map.hh"

#include "sim/logging.hh"

namespace umany
{

const std::vector<VillageId> ServiceMap::emptyList_;

void
ServiceMap::addInstance(ServiceId service, VillageId village)
{
    if (service >= entries_.size())
        entries_.resize(service + 1);
    entries_[service].villages.push_back(village);
}

bool
ServiceMap::hasService(ServiceId service) const
{
    return service < entries_.size() &&
           !entries_[service].villages.empty();
}

VillageId
ServiceMap::pick(ServiceId service)
{
    if (!hasService(service))
        panic("ServiceMap: no instance of service %u", service);
    ++lookups_;
    Entry &e = entries_[service];
    const VillageId v = e.villages[e.next % e.villages.size()];
    e.next = (e.next + 1) % e.villages.size();
    return v;
}

const std::vector<VillageId> &
ServiceMap::villagesOf(ServiceId service) const
{
    if (service >= entries_.size())
        return emptyList_;
    return entries_[service].villages;
}

std::size_t
ServiceMap::serviceCount() const
{
    std::size_t n = 0;
    for (const auto &e : entries_) {
        if (!e.villages.empty())
            ++n;
    }
    return n;
}

} // namespace umany
