#include "sched/request.hh"

#include <numeric>

namespace umany
{

const char *
reqStateName(ReqState s)
{
    switch (s) {
      case ReqState::Created:
        return "created";
      case ReqState::Queued:
        return "queued";
      case ReqState::Running:
        return "running";
      case ReqState::Blocked:
        return "blocked";
      case ReqState::Ready:
        return "ready";
      case ReqState::Finished:
        return "finished";
      case ReqState::Rejected:
        return "rejected";
    }
    return "unknown";
}

bool
Behavior::wellFormed() const
{
    if (segments.empty())
        return false;
    if (groups.size() + 1 != segments.size())
        return false;
    for (const CallGroup &g : groups) {
        if (g.empty())
            return false;
    }
    return true;
}

Tick
Behavior::totalWork() const
{
    return std::accumulate(segments.begin(), segments.end(), Tick{0});
}

ServiceRequest::ServiceRequest(RequestId id, ServiceId service,
                               Behavior behavior)
    : id_(id), service_(service), behavior_(std::move(behavior))
{
}

} // namespace umany
