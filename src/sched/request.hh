/**
 * @file
 * Service requests: the unit of scheduling and accounting.
 *
 * A request executes a Behavior: alternating compute segments and
 * blocking call groups. A call group contains one or more calls
 * (storage accesses or invocations of other services) issued in
 * parallel; the request blocks until all of them respond — matching
 * the fan-out/aggregate pattern of multi-tier microservices (§2.1).
 */

#ifndef UMANY_SCHED_REQUEST_HH
#define UMANY_SCHED_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace umany
{

/** Lifecycle states of a service request (mirrors the RQ Status field). */
enum class ReqState : std::uint8_t
{
    Created,  //!< Allocated, not yet at its village.
    Queued,   //!< In a request queue, ready to run.
    Running,  //!< Executing on a core.
    Blocked,  //!< Waiting on a call group.
    Ready,    //!< Responses arrived; waiting to be re-dequeued.
    Finished, //!< All segments executed.
    Rejected, //!< Dropped: queue and NIC buffers full.
};

/** Human-readable state name. */
const char *reqStateName(ReqState s);

struct AttribRecord;

/** One blocking call within a call group. */
struct CallStep
{
    enum class Kind : std::uint8_t
    {
        Storage, //!< Remote storage access (I/O).
        Service, //!< Synchronous RPC to another service.
    };

    Kind kind = Kind::Storage;
    ServiceId callee = invalidId; //!< For Kind::Service.
    std::uint32_t requestBytes = 512;
    std::uint32_t responseBytes = 1024;
};

/** Calls issued in parallel after a compute segment. */
using CallGroup = std::vector<CallStep>;

/**
 * The execution shape of one handler invocation.
 *
 * segments[i] runs, then groups[i] is issued (if i < groups.size());
 * execution finishes after the last segment. Segment durations are
 * expressed in ticks of *reference-core* work; machines scale them
 * by their per-core performance factor.
 */
struct Behavior
{
    std::vector<Tick> segments;
    std::vector<CallGroup> groups;

    /** Validate shape: segments.size() == groups.size() + 1. */
    bool wellFormed() const;

    /** Sum of segment work (reference ticks). */
    Tick totalWork() const;

    /** Number of blocking call groups. */
    std::size_t blockingCalls() const { return groups.size(); }
};

/** A service request in flight. */
class ServiceRequest
{
  public:
    ServiceRequest(RequestId id, ServiceId service, Behavior behavior);

    /** @name Identity @{ */
    RequestId id() const { return id_; }
    ServiceId service() const { return service_; }
    /** @} */

    /** @name Parent/child linkage for nested RPCs @{ */
    ServiceRequest *parent = nullptr;
    std::uint32_t pendingChildren = 0;
    /** Index of the call group the parent is blocked on. */
    std::size_t blockedGroup = 0;
    /** @} */

    /** @name Placement @{ */
    ServerId server = invalidId;
    VillageId village = invalidId;   //!< Hosting village (global id).
    CoreId lastCore = invalidId;     //!< Core of the last segment.
    /** @} */

    /** @name Execution progress @{ */
    std::size_t segIndex = 0;
    /** Reference ticks of the current segment already executed
     *  (non-zero only between preemptions; Slo policy). */
    Tick segProgress = 0;
    /** Times the request was preempted mid-segment (Slo policy). */
    std::uint32_t preemptions = 0;
    ReqState state = ReqState::Created;
    const Behavior &behavior() const { return behavior_; }
    bool lastSegment() const
    {
        return segIndex + 1 >= behavior_.segments.size();
    }

    /** Reference ticks of compute still ahead of the request. */
    Tick
    remainingWork() const
    {
        Tick total = 0;
        for (std::size_t i = segIndex;
             i < behavior_.segments.size(); ++i)
            total += behavior_.segments[i];
        return total > segProgress ? total - segProgress : 0;
    }
    /** @} */

    /** @name Timing accounting (all ticks) @{ */
    Tick createdAt = 0;    //!< Client-side creation (root) or call issue.
    Tick enqueuedAt = 0;   //!< Last arrival into a queue.
    Tick finishedAt = 0;
    Tick queuedTime = 0;   //!< Total time waiting in queues.
    Tick blockedTime = 0;  //!< Total time blocked on calls.
    Tick runningTime = 0;  //!< Total on-core time.
    std::uint32_t contextSwitches = 0;
    /** @} */

    /** Root-request bookkeeping (valid when parent == nullptr). */
    ServiceId rootEndpoint = invalidId;

    /** @name Machine-internal bookkeeping @{ */
    /** FCFS arrival sequence assigned by the hosting machine. */
    std::uint64_t seq = 0;
    /** Software queue this request is bound to (SW machines). */
    std::uint32_t queueId = invalidId;
    /**
     * Core cycles of deferred software overhead (RPC-layer receive
     * processing, unblock handling) charged when the request next
     * occupies a core.
     */
    Cycles pendingOverhead = 0;
    /** Response payload size sent on completion. */
    std::uint32_t respBytes = 1024;
    /** Request payload size (arrival message). */
    std::uint32_t reqBytes = 512;
    /** Dropped by admission control (NIC buffer exhausted). */
    bool rejected = false;
    /** @} */

    /**
     * Latency ledger, owned by the active AttribRegistry; nullptr
     * whenever attribution is disabled.
     */
    AttribRecord *attrib = nullptr;

  private:
    RequestId id_;
    ServiceId service_;
    Behavior behavior_;
};

} // namespace umany

#endif // UMANY_SCHED_REQUEST_HH
