/**
 * @file
 * Hardware Request Queue (§4.3, Fig 13): a per-village circular
 * buffer of request entries with Status / Service ID / Req Ptr
 * fields backed by a Request Context Memory. Enqueue and dequeue
 * run in hardware; cores spin on a Work flag and use Dequeue /
 * Complete / ContextSwitch instructions.
 *
 * The model tracks entry occupancy (running + blocked + ready all
 * hold entries), the FCFS-by-arrival ready order the Dequeue
 * instruction implements via the head pointer, NIC overflow
 * buffering, and rejection when both fill up.
 */

#ifndef UMANY_SCHED_HW_RQ_HH
#define UMANY_SCHED_HW_RQ_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sched/queue_system.hh" // ReadyList
#include "sim/types.hh"

namespace umany
{

/** Hardware RQ parameters (Table: 64-entry RQ per village). */
struct HwRqParams
{
    std::uint32_t entries = 64;
    std::uint32_t nicBufferEntries = 256;
    Cycles enqueueCycles = 4;   //!< NIC-side, no core involvement.
    Cycles dequeueCycles = 16;  //!< Dequeue instruction.
    Cycles completeCycles = 8;  //!< Complete instruction.
    double ghz = 2.0;
    /** Request Context Memory entry size (saved state, §4.4). */
    std::uint32_t contextBytes = 768;
    /**
     * §4.3's "more advanced design": dynamically partition the RQ
     * across co-located services via an RQ_Map, so one service
     * cannot hog all entries. Partitioned admission reserves
     * entries/N per hosted service (the paper proposes proportional
     * apportioning; equal shares model its default). Excluded from
     * the headline evaluation, as in the paper.
     */
    bool partitioned = false;
};

/** Outcome of trying to admit a request into the village. */
enum class RqAdmit : std::uint8_t
{
    Admitted, //!< Entry allocated; request is queued.
    Buffered, //!< RQ full; waiting in the NIC buffer.
    Rejected, //!< NIC buffer also full; dropped.
};

/** One village's hardware request queue. */
class HwRq
{
  public:
    explicit HwRq(const HwRqParams &p);

    const HwRqParams &params() const { return p_; }

    /**
     * Register a service hosted by this village (sizes the RQ_Map
     * partitions when partitioned mode is on).
     */
    void registerService(ServiceId service);

    /**
     * Request arrives from the village NIC.
     * Admitted/Buffered requests are owned by the queue until
     * dequeued; the caller handles Rejected.
     */
    RqAdmit admit(std::uint64_t seq, ServiceRequest *req);

    /**
     * A blocked request became ready (its responses arrived); the
     * NIC sets the Status field — no core cost.
     */
    void makeReady(std::uint64_t seq, ServiceRequest *req);

    /**
     * Dequeue instruction: pop the ready entry closest to the head.
     * @param now Current tick.
     * @param done Out: tick when the instruction completes.
     */
    ServiceRequest *dequeue(Tick now, Tick &done);

    /**
     * Policy-directed Dequeue: pop the ready entry minimizing
     * @p key (ties FCFS). Same instruction cost as dequeue().
     */
    ServiceRequest *dequeueBy(Tick now, Tick &done,
                              const ReadyList::KeyFn &key);

    /** Smallest @p key among ready entries; false when none. */
    bool
    minReadyKey(const ReadyList::KeyFn &key, std::int64_t &out) const
    {
        return ready_.minKey(key, out);
    }

    /**
     * A sibling village's idle core steals this RQ's youngest ready
     * entry (Corey schedule::steal() semantics: the youngest is the
     * coldest). Frees the entry here; if the NIC buffer holds an
     * admissible request it is promoted into the freed entry and
     * returned via @p promoted (same contract as complete()).
     *
     * @return The stolen request, or nullptr when nothing is ready.
     */
    ServiceRequest *stealYoungest(ServiceRequest *&promoted);

    /**
     * Account a request stolen from a sibling into this village:
     * it occupies an entry here from now (it goes straight to the
     * thief core, so it never visits the ready list).
     */
    void adoptStolen(ServiceId service);

    /**
     * Complete instruction: free the entry of a request of
     * @p finished_service; if the NIC buffer holds an admissible
     * waiting request, it is promoted into the freed entry.
     *
     * @return The promoted request (now Queued) or nullptr.
     */
    ServiceRequest *complete(ServiceId finished_service);

    /** Entries in use (running + blocked + ready). */
    std::uint32_t inFlight() const { return inFlight_; }
    bool full() const { return inFlight_ >= p_.entries; }
    std::size_t readyCount() const { return ready_.size(); }
    std::size_t bufferedCount() const { return nicBuffer_.size(); }

    /** @name Per-village idle-core registry (Work-flag model). @{ */
    void coreIdle(CoreId core);
    void coreBusy(CoreId core);
    CoreId claimIdleCore();
    /** @} */

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t rejectedCount() const { return rejected_; }
    /** Complete instructions executed (conservation: admitted +
     *  stealsIn == completes + stealsOut + inFlight at every
     *  point). */
    std::uint64_t completes() const { return completes_; }
    /** Entries stolen out of this RQ by sibling villages. */
    std::uint64_t stealsOut() const { return stealsOut_; }
    /** Requests adopted from sibling RQs by this village's cores. */
    std::uint64_t stealsIn() const { return stealsIn_; }
    /** Idle-core registry contents (invariant auditing). */
    const std::vector<CoreId> &idleCores() const { return idleCores_; }

  private:
    HwRqParams p_;
    ReadyList ready_;
    std::uint32_t inFlight_ = 0;
    std::deque<std::pair<std::uint64_t, ServiceRequest *>> nicBuffer_;
    std::vector<CoreId> idleCores_;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completes_ = 0;
    std::uint64_t stealsOut_ = 0;
    std::uint64_t stealsIn_ = 0;

    /** Shared tail of complete()/stealYoungest(): release one
     *  entry and promote the oldest admissible buffered request. */
    ServiceRequest *releaseEntry(ServiceId finished_service);

    /** RQ_Map: per-service entry occupancy (partitioned mode). */
    std::vector<ServiceId> services_;
    std::unordered_map<ServiceId, std::uint32_t> perService_;

    std::uint32_t partitionQuota() const;
};

} // namespace umany

#endif // UMANY_SCHED_HW_RQ_HH
