/**
 * @file
 * Software request queuing (§3.2, Fig 3): N FCFS queues over M
 * cores with lock-contention costs that grow with the number of
 * cores sharing a queue, and optional work stealing.
 *
 * This is the scheduling substrate of the ScaleOut and ServerClass
 * baselines and of the Fig 3 queue-count sweep.
 */

#ifndef UMANY_SCHED_QUEUE_SYSTEM_HH
#define UMANY_SCHED_QUEUE_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sched/request.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace umany
{

/**
 * FCFS ready list ordered by arrival sequence number, so requests
 * unblocked after an RPC resume ahead of later arrivals — the same
 * ordering the hardware RQ provides via its head pointer.
 */
class ReadyList
{
  public:
    void insert(std::uint64_t seq, ServiceRequest *req);

    /** Pop the oldest entry (nullptr when empty). */
    ServiceRequest *popFront();

    /** Pop the youngest entry (steal semantics; nullptr when empty). */
    ServiceRequest *popBack();

    /** Order over requests for policy-directed dequeue. */
    using KeyFn = std::function<std::int64_t(const ServiceRequest &)>;

    /**
     * Pop the entry minimizing @p key (ties break toward the oldest
     * seq); nullptr when empty. O(n) scan — RQs are small (64).
     */
    ServiceRequest *popMinBy(const KeyFn &key);

    /** Smallest @p key over the list (no pop); false when empty. */
    bool minKey(const KeyFn &key, std::int64_t &out) const;

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

  private:
    std::map<std::uint64_t, ServiceRequest *> entries_;
};

/** Parameters of the software queue system. */
struct SwQueueParams
{
    std::uint32_t numQueues = 32;
    std::uint32_t numCores = 1024;
    /** Base cycles per queue operation (uncontended). */
    Cycles opBaseCycles = 150;
    /**
     * Additional fractional cost per core sharing the queue: models
     * the coherence ping-pong on the queue lock/line. Effective op
     * cost = base * (1 + contentionPerSharer * coresPerQueue).
     */
    double contentionPerSharer = 0.008;
    bool workStealing = false;
    std::uint32_t stealAttempts = 2;
    /** Extra cycles per steal probe. */
    Cycles stealCycles = 300;
    double ghz = 2.0;
};

/**
 * The software queue system. All operations serialize on the target
 * queue's lock; the caller uses the returned completion tick to
 * schedule downstream events.
 */
class SwQueueSystem
{
  public:
    SwQueueSystem(const SwQueueParams &p, std::uint64_t seed);

    const SwQueueParams &params() const { return p_; }

    /** Queue a core belongs to. */
    std::uint32_t queueOfCore(CoreId core) const;

    /** Uniformly random queue (Fig 3's random assignment). */
    std::uint32_t randomQueue();

    /**
     * Perform an enqueue/unblock operation on queue @p q starting at
     * @p now; the entry is inserted immediately; the returned tick is
     * when the op (lock wait + work) completes.
     */
    Tick enqueue(std::uint32_t q, std::uint64_t seq,
                 ServiceRequest *req, Tick now);

    /**
     * Dequeue for @p core at @p now, stealing if enabled and the
     * home queue is empty.
     *
     * @param done Out: tick at which the op completes.
     * @return The request, or nullptr when nothing was found.
     */
    ServiceRequest *dequeue(CoreId core, Tick now, Tick &done);

    std::size_t queueLength(std::uint32_t q) const;
    std::size_t totalReady() const;

    /** @name Idle-core registry (per queue). @{ */
    void coreIdle(CoreId core);
    void coreBusy(CoreId core);
    /** An idle core of queue @p q (claimed), or invalidId. */
    CoreId claimIdleCore(std::uint32_t q);
    /** Whether @p core is currently in the idle registry
     *  (invariant auditing: an idle-registered core must not be
     *  executing a request). */
    bool idleRegistered(CoreId core) const
    {
        return core < coreIsIdle_.size() && coreIsIdle_[core] != 0;
    }
    /** @} */

    std::uint64_t ops() const { return ops_; }
    std::uint64_t steals() const { return steals_; }
    /** Steal probes issued, successful or not (each pays
     *  stealCycles — failed probes are real work too). */
    std::uint64_t stealProbes() const { return stealProbes_; }
    Tick lockWaitTotal() const { return lockWait_; }

    /** Server id used as the pid of emitted trace events. */
    void setTracePid(std::uint32_t pid) { tracePid_ = pid; }

  private:
    SwQueueParams p_;
    Rng rng_;
    std::uint32_t tracePid_ = 0;

    struct Queue
    {
        ReadyList ready;
        Tick lockFree = 0;
        std::vector<CoreId> idleCores;
    };
    std::vector<Queue> queues_;
    std::vector<std::uint8_t> coreIsIdle_;

    std::uint64_t ops_ = 0;
    std::uint64_t steals_ = 0;
    std::uint64_t stealProbes_ = 0;
    Tick lockWait_ = 0;

    /** Serialize one op on queue @p q from @p now; returns done tick. */
    Tick lockOp(std::uint32_t q, Tick now, Cycles extra_cycles);
    Tick opCost(std::uint32_t q) const;
};

} // namespace umany

#endif // UMANY_SCHED_QUEUE_SYSTEM_HH
