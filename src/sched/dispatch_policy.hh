/**
 * @file
 * Pluggable dispatch policies (ROADMAP "scheduling-policy zoo").
 *
 * The paper's hardware dispatch walks the ServiceMap round-robin;
 * this module makes the placement decision a policy:
 *
 *  - RoundRobin: the paper's default, byte-identical to the seed.
 *  - Po2c: power-of-two-choices — probe 2 random candidate
 *    villages' RQ depth, dispatch to the shallower (nanoPU-style
 *    NIC-side placement).
 *  - Jsqd: JSQ(d) — same as Po2c with a configurable probe count d.
 *  - Steal: keep round-robin placement but let idle cores steal the
 *    youngest ready entry from sibling villages' RQs (the sv6/Corey
 *    per-CPU schedule::steal() design).
 *  - Slo: least-laxity-first dequeue with slice-based preemption
 *    through the hardware ContextSwitch.
 *
 * Probe/steal costs are explicit so the policies pay for the state
 * they inspect; the NIC-side probing logic lives here so it can be
 * fuzzed against a brute-force reference model in isolation.
 */

#ifndef UMANY_SCHED_DISPATCH_POLICY_HH
#define UMANY_SCHED_DISPATCH_POLICY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace umany
{

class Config;

/** Which dispatch/scheduling policy the machine runs. */
enum class DispatchKind : std::uint8_t
{
    RoundRobin, //!< ServiceMap walk (the paper's hardware dispatch).
    Po2c,       //!< Power-of-two-choices at the NIC.
    Jsqd,       //!< JSQ(d): probe d candidates, join the shortest.
    Steal,      //!< RR placement + idle-core work stealing.
    Slo,        //!< Least-laxity dequeue + slice preemption.
};

/** Parse "rr|po2c|jsqd|steal|slo" (fatal on anything else). */
DispatchKind parseDispatchKind(const std::string &name);

/** Flag spelling of a policy kind. */
const char *dispatchKindName(DispatchKind kind);

/** Configuration of the dispatch policy (MachineParams.dispatch). */
struct DispatchPolicyParams
{
    DispatchKind kind = DispatchKind::RoundRobin;
    /** Probe count d for Jsqd (Po2c always probes 2). */
    std::uint32_t probes = 2;
    /** NIC-side cost per RQ-depth probe. */
    Cycles probeCycles = 8;
    /** Sibling RQs an idle core probes before giving up (Steal). */
    std::uint32_t stealAttempts = 2;
    /** Cost per steal probe, charged on failure too. */
    Cycles stealCycles = 64;
    /** Root-to-response latency budget driving laxity (Slo). */
    double sloBudgetUs = 500.0;
    /** Preemption-check granularity on core (Slo). */
    double sloSliceUs = 25.0;

    /** Effective probe count (Po2c pins d = 2). */
    std::uint32_t
    probeCount() const
    {
        return kind == DispatchKind::Po2c ? 2u : probes;
    }

    /** Whether the NIC probes queue depths before dispatching. */
    bool
    probing() const
    {
        return kind == DispatchKind::Po2c ||
               kind == DispatchKind::Jsqd;
    }
};

/**
 * Parse the policy flags shared by every bench and example:
 * `dispatch=rr|po2c|jsqd|steal|slo`, `dispatch_probes=`,
 * `dispatch_probe_cycles=`, `steal_attempts=`, `steal_cycles=`,
 * `slo_budget_us=`, `slo_slice_us=`. Unset keys keep @p defaults;
 * out-of-range values are fatal.
 */
DispatchPolicyParams
dispatchParamsFromConfig(const Config &cfg,
                         const DispatchPolicyParams &defaults = {});

/**
 * The NIC-side probing picker for Po2c/Jsqd: choose up to d distinct
 * candidate villages uniformly at random, read each one's queue
 * depth, and dispatch to the minimum (ties break toward the earliest
 * probe). Draw count per pick is exactly min(d, candidates), so the
 * policy's RNG stream is deterministic under replay.
 */
class NicDispatchPolicy
{
  public:
    /** One depth probe as seen at decision time (for testing). */
    struct Probe
    {
        VillageId village;
        std::size_t depth;
    };

    using DepthFn = std::function<std::size_t(VillageId)>;

    NicDispatchPolicy(const DispatchPolicyParams &p,
                      std::uint64_t seed);

    const DispatchPolicyParams &params() const { return p_; }

    /**
     * Pick a destination among @p candidates (instances of one
     * service, never empty), probing depths via @p depth_of.
     */
    VillageId pick(const std::vector<VillageId> &candidates,
                   const DepthFn &depth_of);

    /** Probes issued by the most recent pick(), in probe order. */
    const std::vector<Probe> &lastProbes() const { return probes_; }

    /** Total depth probes issued (cost accounting). */
    std::uint64_t probesIssued() const { return probesIssued_; }

  private:
    DispatchPolicyParams p_;
    Rng rng_;
    std::vector<Probe> probes_;
    std::vector<std::uint32_t> scratch_; //!< Partial Fisher-Yates.
    std::uint64_t probesIssued_ = 0;
};

} // namespace umany

#endif // UMANY_SCHED_DISPATCH_POLICY_HH
