#include "sched/queue_system.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace umany
{

void
ReadyList::insert(std::uint64_t seq, ServiceRequest *req)
{
    entries_.emplace(seq, req);
}

ServiceRequest *
ReadyList::popFront()
{
    if (entries_.empty())
        return nullptr;
    auto it = entries_.begin();
    ServiceRequest *req = it->second;
    entries_.erase(it);
    return req;
}

ServiceRequest *
ReadyList::popBack()
{
    if (entries_.empty())
        return nullptr;
    auto it = std::prev(entries_.end());
    ServiceRequest *req = it->second;
    entries_.erase(it);
    return req;
}

ServiceRequest *
ReadyList::popMinBy(const KeyFn &key)
{
    if (entries_.empty())
        return nullptr;
    auto best = entries_.begin();
    std::int64_t best_key = key(*best->second);
    for (auto it = std::next(best); it != entries_.end(); ++it) {
        const std::int64_t k = key(*it->second);
        // Strict <: ties keep the earliest seq (FCFS among equals).
        if (k < best_key) {
            best = it;
            best_key = k;
        }
    }
    ServiceRequest *req = best->second;
    entries_.erase(best);
    return req;
}

bool
ReadyList::minKey(const KeyFn &key, std::int64_t &out) const
{
    if (entries_.empty())
        return false;
    bool first = true;
    for (const auto &[seq, req] : entries_) {
        const std::int64_t k = key(*req);
        if (first || k < out) {
            out = k;
            first = false;
        }
    }
    return true;
}

SwQueueSystem::SwQueueSystem(const SwQueueParams &p, std::uint64_t seed)
    : p_(p), rng_(seed)
{
    if (p_.numQueues == 0 || p_.numCores == 0)
        fatal("queue system needs queues and cores");
    if (p_.numQueues > p_.numCores)
        fatal("more queues (%u) than cores (%u)", p_.numQueues,
              p_.numCores);
    queues_.resize(p_.numQueues);
    coreIsIdle_.assign(p_.numCores, 0);
}

std::uint32_t
SwQueueSystem::queueOfCore(CoreId core) const
{
    // Contiguous blocks of cores per queue.
    const std::uint32_t per = p_.numCores / p_.numQueues;
    return std::min(core / per, p_.numQueues - 1);
}

std::uint32_t
SwQueueSystem::randomQueue()
{
    return static_cast<std::uint32_t>(rng_.below(p_.numQueues));
}

Tick
SwQueueSystem::opCost(std::uint32_t) const
{
    const double sharers =
        static_cast<double>(p_.numCores) / p_.numQueues;
    const double cycles = static_cast<double>(p_.opBaseCycles) *
                          (1.0 + p_.contentionPerSharer * sharers);
    return cyclesToTicks(cycles, p_.ghz);
}

Tick
SwQueueSystem::lockOp(std::uint32_t q, Tick now, Cycles extra_cycles)
{
    Queue &queue = queues_[q];
    const Tick start = std::max(now, queue.lockFree);
    lockWait_ += start - now;
    const Tick done =
        start + opCost(q) +
        cyclesToTicks(static_cast<double>(extra_cycles), p_.ghz);
    queue.lockFree = done;
    ++ops_;
    return done;
}

Tick
SwQueueSystem::enqueue(std::uint32_t q, std::uint64_t seq,
                       ServiceRequest *req, Tick now)
{
    if (q >= p_.numQueues)
        panic("enqueue to bad queue %u", q);
    queues_[q].ready.insert(seq, req);
    UMANY_TRACE(TraceSink::active()->instant(
        now, tracePid_, traceSwqTrack(q), "swq.enqueue", 0,
        static_cast<double>(queues_[q].ready.size())));
    return lockOp(q, now, 0);
}

ServiceRequest *
SwQueueSystem::dequeue(CoreId core, Tick now, Tick &done)
{
    const std::uint32_t home = queueOfCore(core);
    done = lockOp(home, now, 0);
    ServiceRequest *req = queues_[home].ready.popFront();
    if (req != nullptr) {
        UMANY_TRACE(TraceSink::active()->instant(
            now, tracePid_, traceSwqTrack(home), "swq.dequeue", 0,
            static_cast<double>(queues_[home].ready.size())));
    }
    if (req != nullptr || !p_.workStealing)
        return req;

    // Steal: probe random victims, paying for each probe. Failed
    // probes (and self-collisions) still grab the victim's lock and
    // burn stealCycles — the cost lands in `done` either way, so the
    // caller sees the core busy even when nothing was found.
    for (std::uint32_t i = 0; i < p_.stealAttempts; ++i) {
        const std::uint32_t victim =
            static_cast<std::uint32_t>(rng_.below(p_.numQueues));
        ++stealProbes_;
        done = lockOp(victim, done, p_.stealCycles);
        if (victim == home)
            continue;
        req = queues_[victim].ready.popBack();
        if (req != nullptr) {
            ++steals_;
            UMANY_TRACE(TraceSink::active()->instant(
                now, tracePid_, traceSwqTrack(victim), "swq.steal",
                0,
                static_cast<double>(queues_[victim].ready.size())));
            return req;
        }
    }
    return nullptr;
}

std::size_t
SwQueueSystem::queueLength(std::uint32_t q) const
{
    return queues_[q].ready.size();
}

std::size_t
SwQueueSystem::totalReady() const
{
    std::size_t total = 0;
    for (const auto &q : queues_)
        total += q.ready.size();
    return total;
}

void
SwQueueSystem::coreIdle(CoreId core)
{
    if (coreIsIdle_[core])
        return;
    coreIsIdle_[core] = 1;
    queues_[queueOfCore(core)].idleCores.push_back(core);
}

void
SwQueueSystem::coreBusy(CoreId core)
{
    coreIsIdle_[core] = 0;
    // Lazy removal: claimIdleCore() skips stale entries.
}

CoreId
SwQueueSystem::claimIdleCore(std::uint32_t q)
{
    auto &idle = queues_[q].idleCores;
    while (!idle.empty()) {
        const CoreId core = idle.back();
        idle.pop_back();
        if (coreIsIdle_[core]) {
            coreIsIdle_[core] = 0;
            return core;
        }
    }
    return invalidId;
}

} // namespace umany
