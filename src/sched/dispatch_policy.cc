#include "sched/dispatch_policy.hh"

#include <algorithm>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace umany
{

DispatchKind
parseDispatchKind(const std::string &name)
{
    if (name == "rr")
        return DispatchKind::RoundRobin;
    if (name == "po2c")
        return DispatchKind::Po2c;
    if (name == "jsqd")
        return DispatchKind::Jsqd;
    if (name == "steal")
        return DispatchKind::Steal;
    if (name == "slo")
        return DispatchKind::Slo;
    fatal("unknown dispatch policy '%s' "
          "(expected rr|po2c|jsqd|steal|slo)",
          name.c_str());
}

const char *
dispatchKindName(DispatchKind kind)
{
    switch (kind) {
      case DispatchKind::RoundRobin:
        return "rr";
      case DispatchKind::Po2c:
        return "po2c";
      case DispatchKind::Jsqd:
        return "jsqd";
      case DispatchKind::Steal:
        return "steal";
      case DispatchKind::Slo:
        return "slo";
    }
    return "?";
}

DispatchPolicyParams
dispatchParamsFromConfig(const Config &cfg,
                         const DispatchPolicyParams &defaults)
{
    DispatchPolicyParams p = defaults;
    p.kind = parseDispatchKind(
        cfg.getString("dispatch", dispatchKindName(p.kind)));
    const std::int64_t probes = cfg.getInt(
        "dispatch_probes", static_cast<std::int64_t>(p.probes));
    if (probes < 1)
        fatal("dispatch_probes must be >= 1 (got %lld)",
              static_cast<long long>(probes));
    p.probes = static_cast<std::uint32_t>(probes);
    p.probeCycles = static_cast<Cycles>(
        cfg.getInt("dispatch_probe_cycles",
                   static_cast<std::int64_t>(p.probeCycles)));
    const std::int64_t att = cfg.getInt(
        "steal_attempts",
        static_cast<std::int64_t>(p.stealAttempts));
    if (att < 1)
        fatal("steal_attempts must be >= 1 (got %lld)",
              static_cast<long long>(att));
    p.stealAttempts = static_cast<std::uint32_t>(att);
    p.stealCycles = static_cast<Cycles>(cfg.getInt(
        "steal_cycles", static_cast<std::int64_t>(p.stealCycles)));
    p.sloBudgetUs = cfg.getDouble("slo_budget_us", p.sloBudgetUs);
    if (p.sloBudgetUs <= 0.0)
        fatal("slo_budget_us must be > 0 (got %g)", p.sloBudgetUs);
    p.sloSliceUs = cfg.getDouble("slo_slice_us", p.sloSliceUs);
    if (p.sloSliceUs < 0.0)
        fatal("slo_slice_us must be >= 0 (got %g)", p.sloSliceUs);
    return p;
}

NicDispatchPolicy::NicDispatchPolicy(const DispatchPolicyParams &p,
                                     std::uint64_t seed)
    : p_(p), rng_(seed)
{
    if (p_.probeCount() == 0)
        fatal("dispatch policy needs at least one probe");
}

VillageId
NicDispatchPolicy::pick(const std::vector<VillageId> &candidates,
                        const DepthFn &depth_of)
{
    if (candidates.empty())
        panic("NIC dispatch pick with no candidate instances");
    const auto n = static_cast<std::uint32_t>(candidates.size());
    const std::uint32_t d = std::min(p_.probeCount(), n);

    // Partial Fisher-Yates over an index scratch array: d distinct
    // candidates, exactly d RNG draws (below(1) still draws, keeping
    // the stream length independent of the tie pattern).
    scratch_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        scratch_[i] = i;
    probes_.clear();
    VillageId best = invalidId;
    std::size_t best_depth = 0;
    for (std::uint32_t i = 0; i < d; ++i) {
        const std::uint32_t j =
            i + static_cast<std::uint32_t>(rng_.below(n - i));
        std::swap(scratch_[i], scratch_[j]);
        const VillageId v = candidates[scratch_[i]];
        const std::size_t depth = depth_of(v);
        probes_.push_back(Probe{v, depth});
        ++probesIssued_;
        if (best == invalidId || depth < best_depth) {
            best = v;
            best_depth = depth;
        }
    }
    return best;
}

} // namespace umany
