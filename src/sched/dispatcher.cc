#include "sched/dispatcher.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace umany
{

Tick
SwDispatcher::process(Tick now)
{
    return process(now, p_.opCycles);
}

Tick
SwDispatcher::process(Tick now, Cycles cycles)
{
    const Tick start = std::max(now, free_);
    const Tick cost =
        cyclesToTicks(static_cast<double>(cycles), p_.ghz);
    // The serialized scheduler core is itself a bottleneck worth
    // seeing in traces: emit its busy window as a duration span.
    UMANY_TRACE({
        TraceSink *s = TraceSink::active();
        s->durBegin(start, tracePid_, traceDispatcherTrack,
                    "dispatch", 0);
        s->durEnd(start + cost, tracePid_, traceDispatcherTrack,
                  "dispatch", 0);
    });
    free_ = start + cost;
    busyTime_ += cost;
    ++ops_;
    return free_;
}

double
SwDispatcher::utilization(Tick now) const
{
    if (now == 0)
        return 0.0;
    return static_cast<double>(busyTime_) / static_cast<double>(now);
}

} // namespace umany
