# Empty compiler generated dependencies file for synthetic_loadgen.
# This may be replaced when dependencies are built.
