file(REMOVE_RECURSE
  "CMakeFiles/synthetic_loadgen.dir/synthetic_loadgen.cpp.o"
  "CMakeFiles/synthetic_loadgen.dir/synthetic_loadgen.cpp.o.d"
  "synthetic_loadgen"
  "synthetic_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
