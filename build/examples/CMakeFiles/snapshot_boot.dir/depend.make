# Empty dependencies file for snapshot_boot.
# This may be replaced when dependencies are built.
