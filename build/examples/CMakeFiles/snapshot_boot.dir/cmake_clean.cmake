file(REMOVE_RECURSE
  "CMakeFiles/snapshot_boot.dir/snapshot_boot.cpp.o"
  "CMakeFiles/snapshot_boot.dir/snapshot_boot.cpp.o.d"
  "snapshot_boot"
  "snapshot_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
