# Empty compiler generated dependencies file for snapshot_boot.
# This may be replaced when dependencies are built.
