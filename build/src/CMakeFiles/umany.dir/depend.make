# Empty dependencies file for umany.
# This may be replaced when dependencies are built.
