# Empty compiler generated dependencies file for umany.
# This may be replaced when dependencies are built.
