
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cluster_sim.cc" "src/CMakeFiles/umany.dir/arch/cluster_sim.cc.o" "gcc" "src/CMakeFiles/umany.dir/arch/cluster_sim.cc.o.d"
  "/root/repo/src/arch/machine.cc" "src/CMakeFiles/umany.dir/arch/machine.cc.o" "gcc" "src/CMakeFiles/umany.dir/arch/machine.cc.o.d"
  "/root/repo/src/arch/presets.cc" "src/CMakeFiles/umany.dir/arch/presets.cc.o" "gcc" "src/CMakeFiles/umany.dir/arch/presets.cc.o.d"
  "/root/repo/src/arch/server.cc" "src/CMakeFiles/umany.dir/arch/server.cc.o" "gcc" "src/CMakeFiles/umany.dir/arch/server.cc.o.d"
  "/root/repo/src/arch/village.cc" "src/CMakeFiles/umany.dir/arch/village.cc.o" "gcc" "src/CMakeFiles/umany.dir/arch/village.cc.o.d"
  "/root/repo/src/cpu/context.cc" "src/CMakeFiles/umany.dir/cpu/context.cc.o" "gcc" "src/CMakeFiles/umany.dir/cpu/context.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/umany.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/umany.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/core_params.cc" "src/CMakeFiles/umany.dir/cpu/core_params.cc.o" "gcc" "src/CMakeFiles/umany.dir/cpu/core_params.cc.o.d"
  "/root/repo/src/cpu/perf_model.cc" "src/CMakeFiles/umany.dir/cpu/perf_model.cc.o" "gcc" "src/CMakeFiles/umany.dir/cpu/perf_model.cc.o.d"
  "/root/repo/src/driver/experiment.cc" "src/CMakeFiles/umany.dir/driver/experiment.cc.o" "gcc" "src/CMakeFiles/umany.dir/driver/experiment.cc.o.d"
  "/root/repo/src/driver/metrics.cc" "src/CMakeFiles/umany.dir/driver/metrics.cc.o" "gcc" "src/CMakeFiles/umany.dir/driver/metrics.cc.o.d"
  "/root/repo/src/driver/qos.cc" "src/CMakeFiles/umany.dir/driver/qos.cc.o" "gcc" "src/CMakeFiles/umany.dir/driver/qos.cc.o.d"
  "/root/repo/src/driver/report.cc" "src/CMakeFiles/umany.dir/driver/report.cc.o" "gcc" "src/CMakeFiles/umany.dir/driver/report.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/umany.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coherence.cc" "src/CMakeFiles/umany.dir/mem/coherence.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/coherence.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/umany.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/footprint.cc" "src/CMakeFiles/umany.dir/mem/footprint.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/footprint.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/umany.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/memory_pool.cc" "src/CMakeFiles/umany.dir/mem/memory_pool.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/memory_pool.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/CMakeFiles/umany.dir/mem/replacement.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/replacement.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/umany.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/umany.dir/mem/tlb.cc.o.d"
  "/root/repo/src/noc/fat_tree.cc" "src/CMakeFiles/umany.dir/noc/fat_tree.cc.o" "gcc" "src/CMakeFiles/umany.dir/noc/fat_tree.cc.o.d"
  "/root/repo/src/noc/leaf_spine.cc" "src/CMakeFiles/umany.dir/noc/leaf_spine.cc.o" "gcc" "src/CMakeFiles/umany.dir/noc/leaf_spine.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/umany.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/umany.dir/noc/link.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/umany.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/umany.dir/noc/mesh.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/umany.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/umany.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/CMakeFiles/umany.dir/noc/topology.cc.o" "gcc" "src/CMakeFiles/umany.dir/noc/topology.cc.o.d"
  "/root/repo/src/power/budget.cc" "src/CMakeFiles/umany.dir/power/budget.cc.o" "gcc" "src/CMakeFiles/umany.dir/power/budget.cc.o.d"
  "/root/repo/src/power/cacti_lite.cc" "src/CMakeFiles/umany.dir/power/cacti_lite.cc.o" "gcc" "src/CMakeFiles/umany.dir/power/cacti_lite.cc.o.d"
  "/root/repo/src/power/mcpat_lite.cc" "src/CMakeFiles/umany.dir/power/mcpat_lite.cc.o" "gcc" "src/CMakeFiles/umany.dir/power/mcpat_lite.cc.o.d"
  "/root/repo/src/power/tech.cc" "src/CMakeFiles/umany.dir/power/tech.cc.o" "gcc" "src/CMakeFiles/umany.dir/power/tech.cc.o.d"
  "/root/repo/src/rpc/inter_server.cc" "src/CMakeFiles/umany.dir/rpc/inter_server.cc.o" "gcc" "src/CMakeFiles/umany.dir/rpc/inter_server.cc.o.d"
  "/root/repo/src/rpc/network_hub.cc" "src/CMakeFiles/umany.dir/rpc/network_hub.cc.o" "gcc" "src/CMakeFiles/umany.dir/rpc/network_hub.cc.o.d"
  "/root/repo/src/rpc/nic.cc" "src/CMakeFiles/umany.dir/rpc/nic.cc.o" "gcc" "src/CMakeFiles/umany.dir/rpc/nic.cc.o.d"
  "/root/repo/src/rpc/top_nic.cc" "src/CMakeFiles/umany.dir/rpc/top_nic.cc.o" "gcc" "src/CMakeFiles/umany.dir/rpc/top_nic.cc.o.d"
  "/root/repo/src/rpc/transport.cc" "src/CMakeFiles/umany.dir/rpc/transport.cc.o" "gcc" "src/CMakeFiles/umany.dir/rpc/transport.cc.o.d"
  "/root/repo/src/sched/dispatcher.cc" "src/CMakeFiles/umany.dir/sched/dispatcher.cc.o" "gcc" "src/CMakeFiles/umany.dir/sched/dispatcher.cc.o.d"
  "/root/repo/src/sched/hw_rq.cc" "src/CMakeFiles/umany.dir/sched/hw_rq.cc.o" "gcc" "src/CMakeFiles/umany.dir/sched/hw_rq.cc.o.d"
  "/root/repo/src/sched/queue_system.cc" "src/CMakeFiles/umany.dir/sched/queue_system.cc.o" "gcc" "src/CMakeFiles/umany.dir/sched/queue_system.cc.o.d"
  "/root/repo/src/sched/request.cc" "src/CMakeFiles/umany.dir/sched/request.cc.o" "gcc" "src/CMakeFiles/umany.dir/sched/request.cc.o.d"
  "/root/repo/src/sched/service_map.cc" "src/CMakeFiles/umany.dir/sched/service_map.cc.o" "gcc" "src/CMakeFiles/umany.dir/sched/service_map.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/umany.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/umany.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/umany.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/umany.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/umany.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/umany.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/umany.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/umany.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/umany.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/umany.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/stats/cdf.cc" "src/CMakeFiles/umany.dir/stats/cdf.cc.o" "gcc" "src/CMakeFiles/umany.dir/stats/cdf.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/umany.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/umany.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/stats_dump.cc" "src/CMakeFiles/umany.dir/stats/stats_dump.cc.o" "gcc" "src/CMakeFiles/umany.dir/stats/stats_dump.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/umany.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/umany.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/umany.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/umany.dir/stats/table.cc.o.d"
  "/root/repo/src/uarch/gshare.cc" "src/CMakeFiles/umany.dir/uarch/gshare.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/gshare.cc.o.d"
  "/root/repo/src/uarch/ispy_lite.cc" "src/CMakeFiles/umany.dir/uarch/ispy_lite.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/ispy_lite.cc.o.d"
  "/root/repo/src/uarch/perceptron.cc" "src/CMakeFiles/umany.dir/uarch/perceptron.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/perceptron.cc.o.d"
  "/root/repo/src/uarch/pipeline_model.cc" "src/CMakeFiles/umany.dir/uarch/pipeline_model.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/pipeline_model.cc.o.d"
  "/root/repo/src/uarch/prefetcher.cc" "src/CMakeFiles/umany.dir/uarch/prefetcher.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/prefetcher.cc.o.d"
  "/root/repo/src/uarch/pythia_lite.cc" "src/CMakeFiles/umany.dir/uarch/pythia_lite.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/pythia_lite.cc.o.d"
  "/root/repo/src/uarch/stride_prefetcher.cc" "src/CMakeFiles/umany.dir/uarch/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/stride_prefetcher.cc.o.d"
  "/root/repo/src/uarch/trace_gen.cc" "src/CMakeFiles/umany.dir/uarch/trace_gen.cc.o" "gcc" "src/CMakeFiles/umany.dir/uarch/trace_gen.cc.o.d"
  "/root/repo/src/workload/alibaba.cc" "src/CMakeFiles/umany.dir/workload/alibaba.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/alibaba.cc.o.d"
  "/root/repo/src/workload/app_graph.cc" "src/CMakeFiles/umany.dir/workload/app_graph.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/app_graph.cc.o.d"
  "/root/repo/src/workload/loadgen.cc" "src/CMakeFiles/umany.dir/workload/loadgen.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/loadgen.cc.o.d"
  "/root/repo/src/workload/media_graph.cc" "src/CMakeFiles/umany.dir/workload/media_graph.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/media_graph.cc.o.d"
  "/root/repo/src/workload/service.cc" "src/CMakeFiles/umany.dir/workload/service.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/service.cc.o.d"
  "/root/repo/src/workload/snapshot.cc" "src/CMakeFiles/umany.dir/workload/snapshot.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/snapshot.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/umany.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/umany.dir/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
