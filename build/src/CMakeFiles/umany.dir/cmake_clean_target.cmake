file(REMOVE_RECURSE
  "libumany.a"
)
