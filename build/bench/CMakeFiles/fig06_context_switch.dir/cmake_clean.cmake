file(REMOVE_RECURSE
  "CMakeFiles/fig06_context_switch.dir/fig06_context_switch.cc.o"
  "CMakeFiles/fig06_context_switch.dir/fig06_context_switch.cc.o.d"
  "fig06_context_switch"
  "fig06_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
