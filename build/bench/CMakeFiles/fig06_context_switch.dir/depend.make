# Empty dependencies file for fig06_context_switch.
# This may be replaced when dependencies are built.
