# Empty compiler generated dependencies file for fig01_uarch_opts.
# This may be replaced when dependencies are built.
