file(REMOVE_RECURSE
  "CMakeFiles/fig01_uarch_opts.dir/fig01_uarch_opts.cc.o"
  "CMakeFiles/fig01_uarch_opts.dir/fig01_uarch_opts.cc.o.d"
  "fig01_uarch_opts"
  "fig01_uarch_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_uarch_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
