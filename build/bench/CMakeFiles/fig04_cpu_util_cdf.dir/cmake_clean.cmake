file(REMOVE_RECURSE
  "CMakeFiles/fig04_cpu_util_cdf.dir/fig04_cpu_util_cdf.cc.o"
  "CMakeFiles/fig04_cpu_util_cdf.dir/fig04_cpu_util_cdf.cc.o.d"
  "fig04_cpu_util_cdf"
  "fig04_cpu_util_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cpu_util_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
