# Empty dependencies file for fig04_cpu_util_cdf.
# This may be replaced when dependencies are built.
