file(REMOVE_RECURSE
  "CMakeFiles/fig18_throughput.dir/fig18_throughput.cc.o"
  "CMakeFiles/fig18_throughput.dir/fig18_throughput.cc.o.d"
  "fig18_throughput"
  "fig18_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
