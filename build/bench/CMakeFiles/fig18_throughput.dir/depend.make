# Empty dependencies file for fig18_throughput.
# This may be replaced when dependencies are built.
