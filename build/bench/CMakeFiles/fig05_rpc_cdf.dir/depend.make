# Empty dependencies file for fig05_rpc_cdf.
# This may be replaced when dependencies are built.
