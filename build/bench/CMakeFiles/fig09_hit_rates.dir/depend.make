# Empty dependencies file for fig09_hit_rates.
# This may be replaced when dependencies are built.
