file(REMOVE_RECURSE
  "CMakeFiles/fig09_hit_rates.dir/fig09_hit_rates.cc.o"
  "CMakeFiles/fig09_hit_rates.dir/fig09_hit_rates.cc.o.d"
  "fig09_hit_rates"
  "fig09_hit_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
