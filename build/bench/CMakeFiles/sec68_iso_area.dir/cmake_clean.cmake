file(REMOVE_RECURSE
  "CMakeFiles/sec68_iso_area.dir/sec68_iso_area.cc.o"
  "CMakeFiles/sec68_iso_area.dir/sec68_iso_area.cc.o.d"
  "sec68_iso_area"
  "sec68_iso_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec68_iso_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
