# Empty dependencies file for sec68_iso_area.
# This may be replaced when dependencies are built.
