file(REMOVE_RECURSE
  "CMakeFiles/fig19_sensitivity.dir/fig19_sensitivity.cc.o"
  "CMakeFiles/fig19_sensitivity.dir/fig19_sensitivity.cc.o.d"
  "fig19_sensitivity"
  "fig19_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
