# Empty compiler generated dependencies file for fig08_footprint.
# This may be replaced when dependencies are built.
