file(REMOVE_RECURSE
  "CMakeFiles/micro_event_queue.dir/micro_event_queue.cc.o"
  "CMakeFiles/micro_event_queue.dir/micro_event_queue.cc.o.d"
  "micro_event_queue"
  "micro_event_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
