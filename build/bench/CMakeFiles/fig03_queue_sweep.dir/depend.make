# Empty dependencies file for fig03_queue_sweep.
# This may be replaced when dependencies are built.
