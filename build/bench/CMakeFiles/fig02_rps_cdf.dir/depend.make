# Empty dependencies file for fig02_rps_cdf.
# This may be replaced when dependencies are built.
