file(REMOVE_RECURSE
  "CMakeFiles/fig02_rps_cdf.dir/fig02_rps_cdf.cc.o"
  "CMakeFiles/fig02_rps_cdf.dir/fig02_rps_cdf.cc.o.d"
  "fig02_rps_cdf"
  "fig02_rps_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_rps_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
