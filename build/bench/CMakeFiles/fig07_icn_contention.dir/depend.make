# Empty dependencies file for fig07_icn_contention.
# This may be replaced when dependencies are built.
