file(REMOVE_RECURSE
  "CMakeFiles/fig20_synthetic.dir/fig20_synthetic.cc.o"
  "CMakeFiles/fig20_synthetic.dir/fig20_synthetic.cc.o.d"
  "fig20_synthetic"
  "fig20_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
