# Empty compiler generated dependencies file for fig20_synthetic.
# This may be replaced when dependencies are built.
