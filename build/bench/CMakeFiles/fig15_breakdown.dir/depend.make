# Empty dependencies file for fig15_breakdown.
# This may be replaced when dependencies are built.
