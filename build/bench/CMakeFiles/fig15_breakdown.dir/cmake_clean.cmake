file(REMOVE_RECURSE
  "CMakeFiles/fig15_breakdown.dir/fig15_breakdown.cc.o"
  "CMakeFiles/fig15_breakdown.dir/fig15_breakdown.cc.o.d"
  "fig15_breakdown"
  "fig15_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
