# Empty compiler generated dependencies file for fig14_16_17_latency.
# This may be replaced when dependencies are built.
