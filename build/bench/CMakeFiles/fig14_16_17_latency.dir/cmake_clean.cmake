file(REMOVE_RECURSE
  "CMakeFiles/fig14_16_17_latency.dir/fig14_16_17_latency.cc.o"
  "CMakeFiles/fig14_16_17_latency.dir/fig14_16_17_latency.cc.o.d"
  "fig14_16_17_latency"
  "fig14_16_17_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_16_17_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
