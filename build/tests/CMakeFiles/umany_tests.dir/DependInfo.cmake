
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/umany_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cluster_sim.cc" "tests/CMakeFiles/umany_tests.dir/test_cluster_sim.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_cluster_sim.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/umany_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/umany_tests.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_cpu.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/umany_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/umany_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_histogram.cc" "tests/CMakeFiles/umany_tests.dir/test_histogram.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_histogram.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/umany_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_media_graph.cc" "tests/CMakeFiles/umany_tests.dir/test_media_graph.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_media_graph.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/umany_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/umany_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_paper_shapes.cc" "tests/CMakeFiles/umany_tests.dir/test_paper_shapes.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_paper_shapes.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/umany_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/umany_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/umany_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_rpc.cc" "tests/CMakeFiles/umany_tests.dir/test_rpc.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_rpc.cc.o.d"
  "/root/repo/tests/test_sched.cc" "tests/CMakeFiles/umany_tests.dir/test_sched.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_sched.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/umany_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/umany_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_uarch.cc" "tests/CMakeFiles/umany_tests.dir/test_uarch.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_uarch.cc.o.d"
  "/root/repo/tests/test_uarch_sweeps.cc" "tests/CMakeFiles/umany_tests.dir/test_uarch_sweeps.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_uarch_sweeps.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/umany_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/umany_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umany.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
