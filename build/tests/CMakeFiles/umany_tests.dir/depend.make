# Empty dependencies file for umany_tests.
# This may be replaced when dependencies are built.
